// Package cluster implements the scatter-gather serving layer: a
// coordinator that fans a suggestion query out over entity-partitioned
// shard servers and merges their partial scores into the global top-k.
//
// A shard is an ordinary xserve node serving an index built with
// `xclean -save-index -shard i/n` (invindex.Index.ShardEntities): it
// holds the posting lists and entity tables of a contiguous range of
// top-level entity roots plus every collection-global statistic, and
// answers GET /shard/suggest with its γ-bounded partial accumulator
// table (core.PartialSet) in a versioned JSON envelope. The
// coordinator adds per-candidate partial sums and per-type entity
// counts across shards (Eq. 8 of the paper is additive over disjoint
// entities), recomputes error-model weights once from the union of the
// shards' variant hits, and re-ranks to top-k — see core.MergePartials
// for the correctness argument.
//
// Each shard is served by a *replica set* (Config.Shards is a list of
// replica lists): the fan-out leg picks its first target by
// consistent-hash affinity tempered by least-loaded scoring, and
// hedges one retry to a different replica (fired early when the first
// attempt fails fast, or after HedgeAfter for stragglers) — see
// replica.go for the routing policy. The fan-out propagates the
// caller's context deadline as the per-attempt HTTP timeout and
// degrades gracefully: only when every attempted replica of a shard
// fails does the coordinator return the surviving shards' merged
// answer marked Partial with per-shard statuses, rather than an error
// or a hang.
//
// Batched requests (SuggestBatch, POST /shard/suggest) ship many
// queries per shard round-trip so high-fan-out coordinators amortize
// connection and envelope cost — see batch.go.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"xclean/internal/core"
	"xclean/internal/obs"
)

// WireVersion is the version of the /shard/suggest JSON envelope. The
// coordinator rejects responses from shards speaking a different
// version instead of silently mis-merging.
const WireVersion = 1

// ShardResponse is the versioned wire envelope a shard returns from
// GET /shard/suggest. The partial set is embedded, so the JSON object
// carries keywords/typeNorms/candidates at the top level next to the
// envelope fields.
type ShardResponse struct {
	Version    int     `json:"version"`
	Corpus     string  `json:"corpus,omitempty"`
	Query      string  `json:"query"`
	RequestID  string  `json:"requestId,omitempty"`
	TookMillis float64 `json:"tookMillis"`
	// TraceSpan is the shard's span subtree (its server span parenting
	// the engine stage spans) when the request carried a sampled
	// traceparent; the coordinator stitches it under the attempt span
	// whose ID it parents to. Absent on untraced requests — the wire
	// cost of tracing is zero when off.
	TraceSpan *obs.SpanNode `json:"traceSpan,omitempty"`
	core.PartialSet
}

// Config configures a Coordinator.
type Config struct {
	// Shards lists each shard's replica set in shard order (shard
	// order is summation order; keep it stable so merged scores are
	// reproducible). Every replica of shard i must serve the same
	// entity-range index; replica order within a shard only names them
	// (r0, r1, ...). Use SingleReplica or ParseTopology to build it.
	Shards [][]Endpoint
	// Corpus, when set, is forwarded as ?corpus= on every fan-out (for
	// shard servers that serve multiple corpora through the catalog).
	Corpus string
	// Beta is the error-model penalty β; it must match the shards'
	// engine configuration (0 = the shared default).
	Beta float64
	// K is the number of suggestions returned (0 = 10).
	K int
	// Timeout bounds each coordinated request (default 2s). The
	// effective per-request budget is min(Timeout, caller deadline).
	Timeout time.Duration
	// HedgeAfter is how long to wait on a shard before hedging the one
	// retry (default Timeout/4). A fast failure hedges immediately.
	HedgeAfter time.Duration
	// LoadFactor is how much worse (×) the consistent-hash affinity
	// replica's load score may be than the least-loaded replica's
	// before the leg routes around it (0 = 2.0).
	LoadFactor float64
	// FailCooldown is how long a replica whose attempt just failed is
	// demoted to the back of every preference order (0 = 1s).
	FailCooldown time.Duration
	// Client is the HTTP client for fan-out (default: a dedicated
	// keep-alive client).
	Client *http.Client
	// Logger receives shard-failure logs (default slog.Default).
	Logger *slog.Logger
}

// AttemptStatus reports one fan-out attempt against one shard replica
// — the first try or the hedged retry — so a partial or slow answer is
// diagnosable from the response envelope alone.
type AttemptStatus struct {
	// Attempt is the ordinal (0 = first try, 1 = hedged retry).
	Attempt int `json:"attempt"`
	// Replica names the replica this attempt targeted.
	Replica string `json:"replica,omitempty"`
	// Hedge marks the hedged retry.
	Hedge bool `json:"hedge,omitempty"`
	// State classifies the attempt's end:
	//
	//	"ok"        answered and won the leg
	//	"error"     returned an error (HTTP failure, bad envelope)
	//	"timeout"   still in flight when the fan-out deadline died
	//	"canceled"  still in flight when the caller hung up
	//	"abandoned" still in flight when another attempt won; its
	//	            work was discarded (a healthy race loser, not a
	//	            failure)
	State      string  `json:"state"`
	Error      string  `json:"error,omitempty"`
	TookMillis float64 `json:"tookMillis"`
}

// ShardStatus reports one shard's outcome within one coordinated
// request.
type ShardStatus struct {
	Shard string `json:"shard"`
	// Replica names the replica that decided the leg: the winner on
	// "ok", the last attempted replica otherwise.
	Replica string `json:"replica,omitempty"`
	// State is "ok", "error", "timeout", or "canceled".
	State      string  `json:"state"`
	Error      string  `json:"error,omitempty"`
	TookMillis float64 `json:"tookMillis"`
	// Candidates is the size of the shard's partial candidate table
	// (0 unless State is "ok").
	Candidates int `json:"candidates"`
	// Hedged reports that the hedged retry fired for this shard.
	Hedged bool `json:"hedged,omitempty"`
	// Attempts itemizes every attempt (first try and hedge) with its
	// own outcome and latency, in launch order.
	Attempts []AttemptStatus `json:"attempts,omitempty"`
}

// Result is one coordinated suggestion answer.
type Result struct {
	Suggestions []core.MergedSuggestion
	// Partial is true when at least one shard did not contribute — the
	// suggestions are the surviving shards' best answer.
	Partial bool
	// Shards holds per-shard statuses in shard order.
	Shards []ShardStatus
	// Corpus is the corpus name negotiated from shard responses.
	Corpus string
	// Spans holds the attempt span trees of a traced request (one
	// "shard.attempt" client span per attempt, shard subtrees stitched
	// under winning attempts), in shard order, for the caller to attach
	// under its server span. Nil on untraced requests.
	Spans []*obs.SpanNode
}

// Coordinator fans suggestion queries out over shard replica sets and
// merges the partials. Safe for concurrent use.
type Coordinator struct {
	cfg    Config
	shards []*shardSet
	client *http.Client
	logger *slog.Logger

	mu     sync.Mutex
	corpus string // negotiated from shard responses
}

// New builds a coordinator over the configured shard replica sets.
func New(cfg Config) (*Coordinator, error) {
	shards, err := buildShards(cfg.Shards)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{cfg: cfg, shards: shards, client: cfg.Client, logger: cfg.Logger}
	if c.client == nil {
		c.client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if c.logger == nil {
		c.logger = slog.Default()
	}
	return c, nil
}

// Topology returns the shard replica sets in shard order.
func (c *Coordinator) Topology() [][]Replica {
	out := make([][]Replica, len(c.shards))
	for i, sh := range c.shards {
		for _, r := range sh.replicas {
			out[i] = append(out[i], r.Replica)
		}
	}
	return out
}

// Replicas returns every replica across all shards, in shard then
// replica order (the flat view logs and health probes iterate).
func (c *Coordinator) Replicas() []Replica {
	var out []Replica
	for _, sh := range c.shards {
		for _, r := range sh.replicas {
			out = append(out, r.Replica)
		}
	}
	return out
}

// Corpus returns the corpus name last negotiated from shard responses
// ("" before the first successful fan-out against a named corpus).
func (c *Coordinator) Corpus() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.corpus == "" {
		return c.cfg.Corpus
	}
	return c.corpus
}

func (c *Coordinator) timeout() time.Duration {
	if c.cfg.Timeout > 0 {
		return c.cfg.Timeout
	}
	return 2 * time.Second
}

func (c *Coordinator) hedgeAfter() time.Duration {
	if c.cfg.HedgeAfter > 0 {
		return c.cfg.HedgeAfter
	}
	return c.timeout() / 4
}

func (c *Coordinator) loadFactor() float64 {
	if c.cfg.LoadFactor > 0 {
		return c.cfg.LoadFactor
	}
	return defaultLoadFactor
}

func (c *Coordinator) failCooldown() time.Duration {
	if c.cfg.FailCooldown > 0 {
		return c.cfg.FailCooldown
	}
	return defaultFailCooldown
}

// routingKey is the consistent-hash affinity key: one corpus+query
// pair always prefers the same replica of each shard, so that
// replica's suggestion cache keeps absorbing the repeats.
func routingKey(corpus, query string) string {
	return corpus + "\x00" + query
}

func millis(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000.0
}

// Suggest coordinates one query: fan out to every shard (bounded by
// min(Config.Timeout, ctx deadline), with one hedged retry per shard
// targeting a different replica), then merge the surviving partial
// sets in shard order. requestID, when non-empty, is forwarded as
// X-Request-Id so shard slow-logs correlate with the coordinator's.
// tc, when non-nil, marks the request sampled: every attempt carries a
// W3C traceparent header (trace ID from tc, a fresh span ID per
// attempt) and the result carries the stitched attempt span trees.
// Shard failures do not produce an error: the result carries
// Partial=true and per-shard statuses, and with every shard down the
// suggestion list is empty but the response is still well-formed. The
// only error is a merge-level inconsistency (shards answering with
// different keyword arity).
func (c *Coordinator) Suggest(ctx context.Context, query, corpus, requestID string, tc *obs.TraceContext) (*Result, error) {
	if corpus == "" {
		corpus = c.cfg.Corpus
	}
	budget := c.timeout()
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < budget {
			budget = rem
		}
	}
	cctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()

	key := routingKey(corpus, query)
	type slot struct {
		resp  *ShardResponse
		st    ShardStatus
		spans []*obs.SpanNode
	}
	slots := make([]slot, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fetch := func(ctx context.Context, rep *replicaState, traceparent string) (any, int, *obs.SpanNode, error) {
				resp, err := c.fetch(ctx, rep, query, corpus, requestID, traceparent)
				if err != nil {
					return nil, 0, nil, err
				}
				return resp, len(resp.Candidates), resp.TraceSpan, nil
			}
			payload, st, spans := c.callLeg(cctx, c.shards[i], key, tc, fetch)
			sl := slot{st: st, spans: spans}
			if payload != nil {
				sl.resp = payload.(*ShardResponse)
			}
			slots[i] = sl
		}(i)
	}
	wg.Wait()

	res := &Result{Shards: make([]ShardStatus, len(slots))}
	sets := make([]core.PartialSet, 0, len(slots))
	for i, sl := range slots {
		res.Shards[i] = sl.st
		res.Spans = append(res.Spans, sl.spans...)
		if sl.resp == nil {
			res.Partial = true
			continue
		}
		if res.Corpus == "" {
			res.Corpus = sl.resp.Corpus
		}
		sets = append(sets, sl.resp.PartialSet)
	}
	if res.Corpus != "" {
		c.mu.Lock()
		c.corpus = res.Corpus
		c.mu.Unlock()
	}
	sugs, err := core.MergePartials(core.MergeConfig{Beta: c.cfg.Beta, K: c.cfg.K}, sets)
	if err != nil {
		return nil, err
	}
	res.Suggestions = sugs
	return res, nil
}

// liveAttempt is callLeg's bookkeeping for one launched attempt. Only
// the coordinating goroutine touches it (launches and channel receives
// all happen there).
type liveAttempt struct {
	rep     *replicaState
	span    obs.SpanID // per-attempt span ID (zero when untraced)
	started time.Time
	done    bool
	state   string // "ok", "error", "timeout", "canceled" once done
	err     string
	took    time.Duration
}

// legFetch performs one attempt of a leg against one replica,
// returning an opaque payload (type-asserted by the caller), the
// candidate count for the shard status, and the replica's stitched
// span subtree (nil on untraced or span-less responses).
type legFetch func(ctx context.Context, rep *replicaState, traceparent string) (payload any, candidates int, span *obs.SpanNode, err error)

// ctxState classifies a context death: the caller hanging up is
// "canceled" (the work was no longer wanted — not a shard fault), the
// fan-out budget expiring is "timeout". Any other error is "error".
func ctxState(err error) string {
	switch {
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	}
	return "error"
}

// callLeg runs one shard's fan-out leg: a first attempt against the
// routed replica, plus at most one hedged retry against a different
// replica — fired after hedgeAfter for stragglers, or immediately when
// the first attempt fails fast (a refused connection should not wait
// out the hedge delay). The first successful attempt wins; a losing
// in-flight attempt is abandoned to the context (its goroutine drains
// into the buffered channel and exits when the per-request context is
// cancelled). Every attempt is itemized in the returned status with
// its replica and final state; on a traced request (tc non-nil) each
// attempt also carried its own traceparent and comes back as one
// "shard.attempt" client span, the winner parenting the replica's
// returned subtree.
func (c *Coordinator) callLeg(ctx context.Context, sh *shardSet, key string, tc *obs.TraceContext, fetch legFetch) (any, ShardStatus, []*obs.SpanNode) {
	start := time.Now()
	ord := sh.order(key, start)
	first := sh.pickFirst(ord, c.loadFactor())

	type outcome struct {
		ord     int
		payload any
		cands   int
		span    *obs.SpanNode
		err     error
		took    time.Duration
	}
	ch := make(chan outcome, 2)
	var attempts []liveAttempt
	launch := func(rep *replicaState) {
		ordinal := len(attempts)
		a := liveAttempt{rep: rep, started: time.Now()}
		header := ""
		if tc != nil {
			a.span = obs.NewSpanID()
			header = obs.Traceparent(tc.TraceID, a.span, true)
		}
		attempts = append(attempts, a)
		rep.m.requests.Add(1)
		rep.inflight.Add(1)
		go func() {
			payload, cands, span, err := fetch(ctx, rep, header)
			rep.inflight.Add(-1)
			ch <- outcome{ord: ordinal, payload: payload, cands: cands, span: span,
				err: err, took: time.Since(a.started)}
		}()
	}
	launch(sh.replicas[first])

	// finish assembles the per-attempt statuses and (when traced) the
	// attempt spans: completed attempts keep their recorded outcome;
	// attempts still in flight are classified by why the leg ended —
	// "abandoned" when another attempt won (a healthy race loser whose
	// work was discarded), legState ("timeout"/"canceled") when the
	// context died under them. winner is the winning attempt's ordinal
	// (-1 = none); the replica's returned subtree is stitched under its
	// span.
	finish := func(winner int, legState string, span *obs.SpanNode) ([]AttemptStatus, []*obs.SpanNode) {
		sts := make([]AttemptStatus, len(attempts))
		var spans []*obs.SpanNode
		for j := range attempts {
			a := &attempts[j]
			st := AttemptStatus{Attempt: j, Replica: a.rep.Name, Hedge: j > 0}
			if a.done {
				st.State, st.Error, st.TookMillis = a.state, a.err, millis(a.took)
			} else {
				elapsed := time.Since(a.started)
				st.TookMillis = millis(elapsed)
				if winner >= 0 {
					st.State = "abandoned"
				} else {
					// The context died with this attempt in flight: a real
					// deadline (or hang-up) death, counted as such on the
					// replica that was holding it.
					st.State = legState
					switch legState {
					case "timeout":
						a.rep.m.timeouts.Add(1)
						a.rep.observeLatency(elapsed)
						a.rep.markFailure(time.Now(), c.failCooldown())
					case "canceled":
						a.rep.m.canceled.Add(1)
					}
				}
			}
			sts[j] = st
			if tc == nil {
				continue
			}
			node := &obs.SpanNode{
				SpanID:        a.span.String(),
				ParentSpanID:  tc.Parent.String(),
				Name:          "shard.attempt",
				Kind:          "client",
				StartUnixNano: a.started.UnixNano(),
				DurationNs:    int64(st.TookMillis * 1e6),
				Attrs: map[string]string{
					"shard":   sh.name,
					"replica": a.rep.Name,
					"attempt": fmt.Sprintf("%d", j),
				},
			}
			if st.Hedge {
				node.Attrs["hedge"] = "true"
			}
			// A race loser is not a timeout: "abandoned" is a status of
			// its own in the waterfall, with no error text.
			switch st.State {
			case "ok":
			case "abandoned":
				node.Status = "abandoned"
			default:
				node.Status = st.State
				node.Error = st.Error
			}
			if j == winner && span != nil {
				node.AddChild(span)
			}
			spans = append(spans, node)
		}
		return sts, spans
	}

	hedge := time.NewTimer(c.hedgeAfter())
	defer hedge.Stop()
	hedged := false
	launchHedge := func() {
		hedged = true
		rep := sh.replicas[sh.hedgeTarget(ord, first)]
		rep.m.hedges.Add(1)
		launch(rep)
	}
	pending := 1
	var lastErr error
	var lastRep *replicaState
	fail := func(state string, err error) (ShardStatus, []*obs.SpanNode) {
		msg := err.Error()
		c.logger.Warn("shard fan-out failed",
			"shard", sh.name, "state", state, "hedged", hedged, "err", msg)
		sts, spans := finish(-1, state, nil)
		replica := ""
		if lastRep != nil {
			replica = lastRep.Name
		} else if n := len(attempts); n > 0 {
			replica = attempts[n-1].rep.Name
		}
		return ShardStatus{
			Shard:      sh.name,
			Replica:    replica,
			State:      state,
			Error:      msg,
			TookMillis: millis(time.Since(start)),
			Hedged:     hedged,
			Attempts:   sts,
		}, spans
	}
	for {
		select {
		case a := <-ch:
			pending--
			att := &attempts[a.ord]
			att.done, att.took = true, a.took
			lastRep = att.rep
			if a.err == nil {
				att.state = "ok"
				att.rep.markSuccess()
				att.rep.observeLatency(a.took)
				att.rep.m.latency.Record(a.took)
				att.rep.m.sink.ObserveSuggest(a.took, nil)
				took := time.Since(start)
				sts, spans := finish(a.ord, "", a.span)
				return a.payload, ShardStatus{
					Shard:      sh.name,
					Replica:    att.rep.Name,
					State:      "ok",
					TookMillis: millis(took),
					Candidates: a.cands,
					Hedged:     hedged,
					Attempts:   sts,
				}, spans
			}
			// A completed failed attempt is classified by its own error
			// (the HTTP client surfaces the context death it died of) and
			// attributed to its replica.
			att.state, att.err = ctxState(a.err), a.err.Error()
			msg := att.err
			att.rep.m.lastErr.Store(&msg)
			switch att.state {
			case "timeout":
				att.rep.m.timeouts.Add(1)
				att.rep.observeLatency(a.took)
				att.rep.markFailure(time.Now(), c.failCooldown())
			case "canceled":
				att.rep.m.canceled.Add(1)
			default:
				att.state = "error"
				att.rep.m.failures.Add(1)
				att.rep.observeLatency(a.took)
				att.rep.markFailure(time.Now(), c.failCooldown())
			}
			lastErr = a.err
			if !hedged && ctx.Err() == nil {
				pending++
				launchHedge()
				continue
			}
			if pending == 0 {
				state := "error"
				if ctx.Err() != nil {
					state = ctxState(ctx.Err())
				}
				st, spans := fail(state, lastErr)
				return nil, st, spans
			}
		case <-hedge.C:
			if !hedged && ctx.Err() == nil {
				pending++
				launchHedge()
			}
		case <-ctx.Done():
			err := ctx.Err()
			if lastErr != nil {
				err = fmt.Errorf("%w (last attempt: %v)", ctx.Err(), lastErr)
			}
			st, spans := fail(ctxState(ctx.Err()), err)
			return nil, st, spans
		}
	}
}

// fetch performs one GET /shard/suggest attempt against one replica.
// traceparent, when non-empty, is the attempt's W3C trace context
// header.
func (c *Coordinator) fetch(ctx context.Context, rep *replicaState, query, corpus, requestID, traceparent string) (*ShardResponse, error) {
	u := rep.URL + "/shard/suggest?q=" + url.QueryEscape(query)
	if corpus != "" {
		u += "&corpus=" + url.QueryEscape(corpus)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if requestID != "" {
		req.Header.Set("X-Request-Id", requestID)
	}
	if traceparent != "" {
		req.Header.Set("Traceparent", traceparent)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("replica %s: HTTP %d: %s", rep.Name, resp.StatusCode,
			strings.TrimSpace(string(body)))
	}
	var sr ShardResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&sr); err != nil {
		return nil, fmt.Errorf("replica %s: bad response: %w", rep.Name, err)
	}
	if sr.Version != WireVersion {
		return nil, fmt.Errorf("replica %s: wire version %d (coordinator speaks %d)",
			rep.Name, sr.Version, WireVersion)
	}
	return &sr, nil
}

// ShardHealth is one replica's health-probe outcome.
type ShardHealth struct {
	// Shard is the entity-range label ("shard0") shared by every
	// replica of the shard.
	Shard string `json:"shard"`
	// Replica is the probed replica's full name.
	Replica string `json:"replica"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
}

// Health probes every replica's /healthz in parallel (each probe
// bounded by the remaining context budget) and returns per-replica
// outcomes in shard then replica order.
func (c *Coordinator) Health(ctx context.Context) []ShardHealth {
	type probe struct {
		sh  *shardSet
		rep *replicaState
	}
	var ps []probe
	for _, sh := range c.shards {
		for _, rep := range sh.replicas {
			ps = append(ps, probe{sh, rep})
		}
	}
	out := make([]ShardHealth, len(ps))
	var wg sync.WaitGroup
	for i, p := range ps {
		wg.Add(1)
		go func(i int, p probe) {
			defer wg.Done()
			h := ShardHealth{Shard: p.sh.name, Replica: p.rep.Name, URL: p.rep.URL}
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.rep.URL+"/healthz", nil)
			if err != nil {
				h.Error = err.Error()
				out[i] = h
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				h.Error = err.Error()
				out[i] = h
				return
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				h.Healthy = true
			} else {
				h.Error = fmt.Sprintf("HTTP %d", resp.StatusCode)
			}
			out[i] = h
		}(i, p)
	}
	wg.Wait()
	return out
}
