package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"xclean/internal/core"
	"xclean/internal/obs"
)

// Batched scatter-gather: POST /shard/suggest carries many queries in
// one round-trip per shard, so a coordinator serving bulk traffic
// (prefetchers, offline rescoring, as-you-type bursts) pays the
// connection, header, and envelope cost once per shard instead of once
// per query. The batch rides the same leg lifecycle as single-query
// fan-out — replica routing, hedged retry to a different replica,
// attempt classification — with the whole batch as the unit of
// hedging. Batched legs are untraced (a trace waterfall of N queries
// × M shards has no single request to attach to); per-shard statuses
// are still itemized.

// MaxBatchQueries bounds one batched request (shard servers reject
// larger batches; the coordinator-side HTTP handler enforces it too).
const MaxBatchQueries = 256

// BatchRequest is the body of POST /shard/suggest.
type BatchRequest struct {
	Version int    `json:"version"`
	Corpus  string `json:"corpus,omitempty"`
	// RequestID correlates the shard's logs with the coordinator's.
	RequestID string   `json:"requestId,omitempty"`
	Queries   []string `json:"queries"`
}

// BatchEntry is one query's partial result within a batched shard
// response. Error, when non-empty, marks this query failed on the
// shard (the others may still be good); the coordinator degrades just
// that query to partial.
type BatchEntry struct {
	Query string `json:"query"`
	Error string `json:"error,omitempty"`
	core.PartialSet
}

// BatchResponse is the body a shard returns from POST /shard/suggest:
// one entry per request query, in request order.
type BatchResponse struct {
	Version    int          `json:"version"`
	Corpus     string       `json:"corpus,omitempty"`
	TookMillis float64      `json:"tookMillis"`
	Results    []BatchEntry `json:"results"`
}

// BatchQueryAnswer is one query's merged outcome within a coordinated
// batch.
type BatchQueryAnswer struct {
	Query       string
	Suggestions []core.MergedSuggestion
	// Partial is true when at least one shard did not contribute to
	// this query.
	Partial bool
}

// BatchAnswer is one coordinated batch answer.
type BatchAnswer struct {
	// Queries holds per-query merged results in request order.
	Queries []BatchQueryAnswer
	// Shards holds the batched legs' statuses in shard order (one leg
	// per shard covers the whole batch).
	Shards []ShardStatus
	// Partial is true when any query is partial.
	Partial bool
	// Corpus is the corpus name negotiated from shard responses.
	Corpus string
}

// SuggestBatch coordinates many queries in one batched round-trip per
// shard: each shard leg POSTs the full query list to its routed
// replica (hedging to a different replica exactly like single-query
// fan-out), then every query is merged independently across the
// surviving shards. A failed shard leg degrades every query to
// partial; a per-query error on a healthy shard degrades only that
// query. The only error is a merge-level inconsistency.
func (c *Coordinator) SuggestBatch(ctx context.Context, queries []string, corpus, requestID string) (*BatchAnswer, error) {
	if len(queries) == 0 {
		return &BatchAnswer{}, nil
	}
	if len(queries) > MaxBatchQueries {
		return nil, fmt.Errorf("cluster: batch of %d queries exceeds the %d limit",
			len(queries), MaxBatchQueries)
	}
	if corpus == "" {
		corpus = c.cfg.Corpus
	}
	budget := c.timeout()
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < budget {
			budget = rem
		}
	}
	cctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()

	// The affinity key spans the whole batch: a repeated batch (same
	// queries, same corpus) lands on the same replicas.
	key := routingKey(corpus, strings.Join(queries, "\x00"))
	type slot struct {
		resp *BatchResponse
		st   ShardStatus
	}
	slots := make([]slot, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload, st, _ := c.callLeg(cctx, c.shards[i], key, nil,
				func(ctx context.Context, rep *replicaState, _ string) (any, int, *obs.SpanNode, error) {
					resp, err := c.fetchBatch(ctx, rep, queries, corpus, requestID)
					if err != nil {
						return nil, 0, nil, err
					}
					cands := 0
					for _, e := range resp.Results {
						cands += len(e.Candidates)
					}
					return resp, cands, nil, nil
				})
			sl := slot{st: st}
			if payload != nil {
				sl.resp = payload.(*BatchResponse)
			}
			slots[i] = sl
		}(i)
	}
	wg.Wait()

	ans := &BatchAnswer{
		Queries: make([]BatchQueryAnswer, len(queries)),
		Shards:  make([]ShardStatus, len(slots)),
	}
	for i, sl := range slots {
		ans.Shards[i] = sl.st
		if sl.resp != nil && ans.Corpus == "" {
			ans.Corpus = sl.resp.Corpus
		}
	}
	if ans.Corpus != "" {
		c.mu.Lock()
		c.corpus = ans.Corpus
		c.mu.Unlock()
	}
	for qi, q := range queries {
		sets := make([]core.PartialSet, 0, len(slots))
		partial := false
		for _, sl := range slots {
			if sl.resp == nil {
				partial = true
				continue
			}
			e := sl.resp.Results[qi]
			if e.Error != "" {
				partial = true
				continue
			}
			sets = append(sets, e.PartialSet)
		}
		sugs, err := core.MergePartials(core.MergeConfig{Beta: c.cfg.Beta, K: c.cfg.K}, sets)
		if err != nil {
			return nil, fmt.Errorf("query %q: %w", q, err)
		}
		ans.Queries[qi] = BatchQueryAnswer{Query: q, Suggestions: sugs, Partial: partial}
		if partial {
			ans.Partial = true
		}
	}
	return ans, nil
}

// fetchBatch performs one POST /shard/suggest attempt against one
// replica.
func (c *Coordinator) fetchBatch(ctx context.Context, rep *replicaState, queries []string, corpus, requestID string) (*BatchResponse, error) {
	body, err := json.Marshal(BatchRequest{
		Version:   WireVersion,
		Corpus:    corpus,
		RequestID: requestID,
		Queries:   queries,
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		rep.URL+"/shard/suggest", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if requestID != "" {
		req.Header.Set("X-Request-Id", requestID)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("replica %s: HTTP %d: %s", rep.Name, resp.StatusCode,
			strings.TrimSpace(string(b)))
	}
	var br BatchResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&br); err != nil {
		return nil, fmt.Errorf("replica %s: bad batch response: %w", rep.Name, err)
	}
	if br.Version != WireVersion {
		return nil, fmt.Errorf("replica %s: wire version %d (coordinator speaks %d)",
			rep.Name, br.Version, WireVersion)
	}
	if len(br.Results) != len(queries) {
		return nil, fmt.Errorf("replica %s: %d results for %d queries",
			rep.Name, len(br.Results), len(queries))
	}
	return &br, nil
}
