package cluster

import (
	"fmt"
	"io"

	"xclean/internal/eval"
	"xclean/internal/obs"
)

// ShardMetrics is the JSON snapshot of one replica's fan-out counters,
// served under /metricz — one entry per replica, so a flaky node is
// visible in its own series.
type ShardMetrics struct {
	Shard   string `json:"shard"`
	Replica string `json:"replica"`
	// Requests counts attempts launched at this replica (hedges
	// included); Failures/Timeouts/Canceled classify the ones that did
	// not answer (error return / fan-out deadline death / caller
	// hang-up); Hedges counts the hedged retries this replica received.
	Requests int64 `json:"requests"`
	Failures int64 `json:"failures"`
	Timeouts int64 `json:"timeouts"`
	Canceled int64 `json:"canceled"`
	Hedges   int64 `json:"hedges"`
	// Inflight and EwmaMillis are the live routing inputs of the
	// least-loaded pick.
	Inflight   int64             `json:"inflight"`
	EwmaMillis float64           `json:"ewmaMillis"`
	LastError  string            `json:"lastError,omitempty"`
	Latency    eval.LatencyStats `json:"latency"`
}

// MetricsSnapshot returns per-replica fan-out counters in shard then
// replica order.
func (c *Coordinator) MetricsSnapshot() []ShardMetrics {
	var out []ShardMetrics
	for _, sh := range c.shards {
		for _, rep := range sh.replicas {
			sm := ShardMetrics{
				Shard:      sh.name,
				Replica:    rep.Name,
				Requests:   rep.m.requests.Load(),
				Failures:   rep.m.failures.Load(),
				Timeouts:   rep.m.timeouts.Load(),
				Canceled:   rep.m.canceled.Load(),
				Hedges:     rep.m.hedges.Load(),
				Inflight:   rep.inflight.Load(),
				EwmaMillis: float64(rep.ewmaNs.Load()) / 1e6,
				Latency:    rep.m.latency.Stats(),
			}
			if p := rep.m.lastErr.Load(); p != nil {
				sm.LastError = *p
			}
			out = append(out, sm)
		}
	}
	return out
}

// WritePrometheus emits the coordinator's replica-labeled series: the
// standard engine families (per-replica ok-attempt latency recorded in
// each replica's sink) via the shared labeled exposition, plus the
// fan-out counters and routing gauges specific to the cluster layer.
// Every sample carries shard="shardN",replica="shardN/rM@host" labels
// so dashboards can aggregate by shard or drill into one replica.
func (c *Coordinator) WritePrometheus(w io.Writer) {
	var sinks []obs.NamedSink
	for _, sh := range c.shards {
		for _, rep := range sh.replicas {
			sinks = append(sinks, obs.NamedSink{Label: rep.Name, Sink: rep.m.sink})
		}
	}
	obs.WritePrometheusLabeled(w, "xclean_cluster", "replica", sinks)
	labels := func(sh *shardSet, rep *replicaState) string {
		return fmt.Sprintf("shard=%q,replica=%q", sh.name, rep.Name)
	}
	counter := func(name, help string, v func(*replicaMetrics) int64) {
		obs.WriteHeader(w, name, help, "counter")
		for _, sh := range c.shards {
			for _, rep := range sh.replicas {
				obs.WriteLabeledCounterSample(w, name, labels(sh, rep), v(rep.m))
			}
		}
	}
	counter("xclean_cluster_shard_failures_total",
		"Fan-out attempts that returned an error.",
		func(m *replicaMetrics) int64 { return m.failures.Load() })
	counter("xclean_cluster_shard_timeouts_total",
		"Fan-out attempts that ran out the propagated deadline.",
		func(m *replicaMetrics) int64 { return m.timeouts.Load() })
	counter("xclean_cluster_shard_canceled_total",
		"Fan-out attempts abandoned because the caller hung up.",
		func(m *replicaMetrics) int64 { return m.canceled.Load() })
	counter("xclean_cluster_shard_hedges_total",
		"Hedged retries received (straggler or fast-failure).",
		func(m *replicaMetrics) int64 { return m.hedges.Load() })
	obs.WriteHeader(w, "xclean_cluster_replica_inflight",
		"Attempts executing against this replica right now.", "gauge")
	for _, sh := range c.shards {
		for _, rep := range sh.replicas {
			obs.WriteLabeledGaugeSample(w, "xclean_cluster_replica_inflight",
				labels(sh, rep), float64(rep.inflight.Load()))
		}
	}
	obs.WriteHeader(w, "xclean_cluster_replica_ewma_seconds",
		"EWMA attempt latency feeding the least-loaded pick.", "gauge")
	for _, sh := range c.shards {
		for _, rep := range sh.replicas {
			obs.WriteLabeledGaugeSample(w, "xclean_cluster_replica_ewma_seconds",
				labels(sh, rep), float64(rep.ewmaNs.Load())/1e9)
		}
	}
}
