// Fan-out lifecycle tests: attempt-state taxonomy (abandoned vs
// timeout vs canceled), goroutine hygiene, replica failover, and
// batched round-trip parity.
package cluster_test

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"xclean/internal/cluster"
	"xclean/internal/obs"
)

// hangFirstServer wraps inner: the first request hangs until the
// client hangs up; every later request is served normally.
func hangFirstServer(t *testing.T, inner http.Handler) *httptest.Server {
	t.Helper()
	var first atomic.Bool
	first.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if first.CompareAndSwap(true, false) {
			<-r.Context().Done()
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestAbandonedAttemptSpan (regression): when the hedged retry wins
// the leg, the still-in-flight first attempt is a healthy race loser.
// Its span must read "abandoned" in the stitched waterfall — not
// "timeout" — and the replica's timeout counter must not move (only
// real deadline deaths count).
func TestAbandonedAttemptSpan(t *testing.T) {
	f := newFixture(t, 1, cluster.Config{})
	slow := hangFirstServer(t, f.servers[0].Config.Handler)

	coord, err := cluster.New(cluster.Config{
		Shards:     cluster.SingleReplica(slow.URL),
		Timeout:    5 * time.Second,
		HedgeAfter: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc := &obs.TraceContext{TraceID: obs.NewTraceID(), Parent: obs.NewSpanID()}
	res, err := coord.Suggest(context.Background(), f.queries[0], "", "", tc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("hedge did not recover: %+v", res.Shards)
	}
	st := res.Shards[0]
	if !st.Hedged || len(st.Attempts) != 2 {
		t.Fatalf("shard status = %+v, want 2 attempts with a hedge", st)
	}
	if st.Attempts[0].State != "abandoned" || st.Attempts[1].State != "ok" {
		t.Fatalf("attempt states = %q/%q, want abandoned/ok",
			st.Attempts[0].State, st.Attempts[1].State)
	}
	if len(res.Spans) != 2 {
		t.Fatalf("%d attempt spans, want 2", len(res.Spans))
	}
	byAttempt := map[string]*obs.SpanNode{}
	for _, sp := range res.Spans {
		if sp.Name != "shard.attempt" {
			t.Fatalf("span name %q, want shard.attempt", sp.Name)
		}
		byAttempt[sp.Attrs["attempt"]] = sp
	}
	if sp := byAttempt["0"]; sp == nil || sp.Status != "abandoned" || sp.Error != "" {
		t.Fatalf("loser span = %+v, want status abandoned with no error", sp)
	}
	if sp := byAttempt["1"]; sp == nil || sp.Status != "" || sp.Attrs["hedge"] != "true" {
		t.Fatalf("winner span = %+v, want ok hedge span", sp)
	}
	for _, m := range coord.MetricsSnapshot() {
		if m.Timeouts != 0 {
			t.Fatalf("abandoned race loser counted as timeout: %+v", m)
		}
	}
}

// TestCanceledVsTimeout: an attempt still in flight when the context
// dies is classified by *why* the context died — the fan-out budget
// expiring is "timeout", the caller hanging up is "canceled" — in the
// shard state, the attempt state, and the per-replica counters.
func TestCanceledVsTimeout(t *testing.T) {
	cases := []struct {
		name  string
		ctx   func() (context.Context, context.CancelFunc)
		state string
	}{
		{
			name: "deadline",
			ctx: func() (context.Context, context.CancelFunc) {
				return context.WithTimeout(context.Background(), 200*time.Millisecond)
			},
			state: "timeout",
		},
		{
			name: "hangup",
			ctx: func() (context.Context, context.CancelFunc) {
				ctx, cancel := context.WithCancel(context.Background())
				go func() {
					time.Sleep(200 * time.Millisecond)
					cancel()
				}()
				return ctx, cancel
			},
			state: "canceled",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				<-r.Context().Done()
			}))
			t.Cleanup(hang.Close)
			coord, err := cluster.New(cluster.Config{
				Shards:     cluster.SingleReplica(hang.URL),
				Timeout:    30 * time.Second, // far above the ctx death
				HedgeAfter: 25 * time.Hour,   // keep the leg single-attempt
			})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := tc.ctx()
			defer cancel()
			res, err := coord.Suggest(ctx, "query", "", "", nil)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Partial {
				t.Fatalf("hanging shard not partial: %+v", res)
			}
			st := res.Shards[0]
			if st.State != tc.state {
				t.Fatalf("shard state = %q, want %q (%+v)", st.State, tc.state, st)
			}
			if len(st.Attempts) != 1 || st.Attempts[0].State != tc.state {
				t.Fatalf("attempts = %+v, want one %q attempt", st.Attempts, tc.state)
			}
			m := coord.MetricsSnapshot()[0]
			wantTimeouts, wantCanceled := int64(0), int64(0)
			if tc.state == "timeout" {
				wantTimeouts = 1
			} else {
				wantCanceled = 1
			}
			if m.Timeouts != wantTimeouts || m.Canceled != wantCanceled {
				t.Fatalf("%s: counters timeouts=%d canceled=%d, want %d/%d",
					tc.name, m.Timeouts, m.Canceled, wantTimeouts, wantCanceled)
			}
		})
	}
}

// TestNoGoroutineLeak: a burst of requests that all force a hedge and
// abandon an in-flight attempt must leave no goroutine behind once the
// per-request contexts are done (the abandoned attempts drain into the
// leg's buffered channel and exit).
func TestNoGoroutineLeak(t *testing.T) {
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	t.Cleanup(hang.Close)
	coord, err := cluster.New(cluster.Config{
		Shards:     cluster.SingleReplica(hang.URL),
		Timeout:    150 * time.Millisecond,
		HedgeAfter: 20 * time.Millisecond, // every request hedges, both attempts hang
	})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		if _, err := coord.Suggest(context.Background(), fmt.Sprintf("q%d", i), "", "", nil); err != nil {
			t.Fatal(err)
		}
	}
	// Abandoned attempt goroutines die with their per-request context;
	// give the runtime a moment to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if after := runtime.NumGoroutine(); after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines %d -> %d after forced-hedge burst\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReplicaFailover is the in-process version of the replica-smoke
// drill: every shard has two replicas over the same index; killing one
// replica of each shard must not produce a single partial answer, and
// scores must stay identical to the standalone engine.
func TestReplicaFailover(t *testing.T) {
	f := newFixture(t, 2, cluster.Config{})
	topo := make([][]cluster.Endpoint, len(f.servers))
	var spares []*httptest.Server
	for i, primary := range f.servers {
		spare := httptest.NewServer(primary.Config.Handler)
		t.Cleanup(spare.Close)
		spares = append(spares, spare)
		topo[i] = []cluster.Endpoint{cluster.Endpoint(primary.URL), cluster.Endpoint(spare.URL)}
	}
	coord, err := cluster.New(cluster.Config{
		Shards:       topo,
		Timeout:      5 * time.Second,
		HedgeAfter:   100 * time.Millisecond,
		FailCooldown: 10 * time.Minute, // one failed attempt demotes for the whole test
	})
	if err != nil {
		t.Fatal(err)
	}
	checkQueries := f.queries
	if len(checkQueries) > 10 {
		checkQueries = checkQueries[:10]
	}
	check := func(phase string) {
		for _, q := range checkQueries {
			want := f.full.Suggest(q)
			res, err := coord.Suggest(context.Background(), q, "", "", nil)
			if err != nil {
				t.Fatalf("%s %q: %v", phase, q, err)
			}
			if res.Partial {
				t.Fatalf("%s %q: partial answer with a live replica per shard: %+v",
					phase, q, res.Shards)
			}
			if len(res.Suggestions) != len(want) {
				t.Fatalf("%s %q: %d vs %d suggestions", phase, q, len(res.Suggestions), len(want))
			}
			for i := range want {
				g, w := res.Suggestions[i], want[i]
				if g.Query() != w.Query ||
					math.Abs(g.Score-w.Score) > 1e-12*math.Max(1, math.Abs(w.Score)) {
					t.Fatalf("%s %q rank %d: %+v vs %+v", phase, q, i, g, w)
				}
			}
		}
	}
	check("healthy")
	// Kill one replica of each shard (the primaries); the survivors
	// hold the full index, so nothing may degrade.
	for _, primary := range f.servers {
		primary.Close()
	}
	check("one replica down")
	for _, m := range coord.MetricsSnapshot() {
		if m.Replica == "" {
			t.Fatalf("metrics entry without replica identity: %+v", m)
		}
	}
	_ = spares
}

// TestSuggestBatchParity: a batched fan-out must return exactly the
// standalone engine's answer for every query, and a batch repeated
// against a degraded cluster degrades per query rather than erroring.
func TestSuggestBatchParity(t *testing.T) {
	f := newFixture(t, 2, cluster.Config{})
	queries := f.queries
	if len(queries) > 12 {
		queries = queries[:12]
	}
	ans, err := f.coord.SuggestBatch(context.Background(), queries, "", "batch-1")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Partial {
		t.Fatalf("healthy batch partial: %+v", ans.Shards)
	}
	if len(ans.Queries) != len(queries) {
		t.Fatalf("%d answers for %d queries", len(ans.Queries), len(queries))
	}
	for qi, q := range queries {
		want := f.full.Suggest(q)
		got := ans.Queries[qi]
		if got.Query != q || got.Partial {
			t.Fatalf("answer %d = %+v, want complete answer for %q", qi, got, q)
		}
		if len(got.Suggestions) != len(want) {
			t.Fatalf("%q: %d vs %d suggestions", q, len(got.Suggestions), len(want))
		}
		for i := range want {
			g, w := got.Suggestions[i], want[i]
			if g.Query() != w.Query || g.ResultType != w.ResultType ||
				g.Entities != w.Entities || g.EditDistance != w.EditDistance {
				t.Fatalf("%q rank %d:\n got=%+v\nwant=%+v", q, i, g, w)
			}
			if math.Abs(g.Score-w.Score) > 1e-12*math.Max(1, math.Abs(w.Score)) {
				t.Fatalf("%q rank %d: score %g vs %g", q, i, g.Score, w.Score)
			}
		}
	}

	// Oversized batches are rejected up front.
	big := make([]string, cluster.MaxBatchQueries+1)
	for i := range big {
		big[i] = "q"
	}
	if _, err := f.coord.SuggestBatch(context.Background(), big, "", ""); err == nil {
		t.Fatal("oversized batch accepted")
	}

	// A dead shard degrades every query of the batch to partial but
	// still answers from the survivor.
	f.servers[1].Close()
	ans, err = f.coord.SuggestBatch(context.Background(), queries[:3], "", "batch-2")
	if err != nil {
		t.Fatalf("degraded batch errored: %v", err)
	}
	if !ans.Partial {
		t.Fatalf("dead shard not partial: %+v", ans.Shards)
	}
	for _, qa := range ans.Queries {
		if !qa.Partial {
			t.Fatalf("query %q not marked partial with a dead shard", qa.Query)
		}
	}
}
