package cluster

import (
	"fmt"
	"hash/fnv"
	"net/url"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"xclean/internal/eval"
	"xclean/internal/obs"
)

// Replica routing: each entity-range shard is served by a replica set,
// and every fan-out leg picks its first target and its hedge target
// from that set. Three mechanisms compose:
//
//   - consistent-hash affinity: a rendezvous (highest-random-weight)
//     hash of the request key (corpus + query) over the replica URLs
//     yields a per-key preference order that is stable across
//     coordinator restarts and moves only the affected keys when the
//     topology changes — so each replica's suggestion cache keeps
//     seeing the same slice of the query distribution;
//   - least-loaded override: the affinity head is demoted when its
//     load score (EWMA latency × (1 + in-flight attempts)) exceeds
//     LoadFactor× the lightest replica's — affinity is a preference,
//     not a hot-spot amplifier;
//   - failure cooldown: a replica whose attempt just failed is moved
//     to the back of every preference order for FailCooldown, so one
//     dead replica costs at most one fast-failing attempt per cooldown
//     window instead of one per request.
//
// The hedged retry always goes to a *different* replica when the set
// has more than one (a straggler is most often a node-local problem;
// re-asking the same node doubles down on it). Single-replica shards
// keep the pre-replica behavior of hedging against the same endpoint.

// Endpoint is one replica server address: host:port or a full URL.
type Endpoint string

// SingleReplica adapts a flat one-replica-per-shard address list to
// the topology form of Config.Shards.
func SingleReplica(addrs ...string) [][]Endpoint {
	out := make([][]Endpoint, len(addrs))
	for i, a := range addrs {
		out[i] = []Endpoint{Endpoint(a)}
	}
	return out
}

// ParseTopology parses the CLI topology syntax into Config.Shards.
// Two equivalent spellings are accepted:
//
//	"h0a|h0b,h1a|h1b"   shards by ',', replicas within a shard by '|'
//	"h0a,h0b;h1a,h1b"   shards by ';', replicas by ',' (-shard-replicas)
//
// The second form is selected by the presence of ';'. Whitespace
// around entries is trimmed; empty entries are kept so New can report
// their position.
func ParseTopology(s string) [][]Endpoint {
	shardSep, repSep := ",", "|"
	if strings.Contains(s, ";") {
		shardSep, repSep = ";", ","
	}
	var out [][]Endpoint
	for _, group := range strings.Split(s, shardSep) {
		var reps []Endpoint
		for _, addr := range strings.Split(group, repSep) {
			reps = append(reps, Endpoint(strings.TrimSpace(addr)))
		}
		out = append(out, reps)
	}
	return out
}

// Replica identifies one replica of one shard.
type Replica struct {
	// Shard labels the entity range ("shard0"); every replica of a
	// shard serves the same range.
	Shard string `json:"shard"`
	// Name labels the replica in statuses, logs, and metric series
	// ("shard0/r1@host:port").
	Name string `json:"name"`
	// URL is the replica's base URL (scheme://host:port).
	URL string `json:"url"`
}

// replicaMetrics aggregates one replica's fan-out counters across
// requests. Attempt outcomes are attributed to the replica that served
// the attempt, so a flaky node is visible in its own series rather
// than smeared over the shard.
type replicaMetrics struct {
	sink     *obs.Sink // ok-attempt latency, for the labeled exposition
	latency  eval.LatencyRecorder
	requests atomic.Int64 // attempts launched
	failures atomic.Int64 // attempts that returned an error
	timeouts atomic.Int64 // attempts killed by the fan-out deadline
	canceled atomic.Int64 // attempts killed by the caller hanging up
	hedges   atomic.Int64 // hedged attempts launched at this replica
	lastErr  atomic.Pointer[string]
}

// replicaState is one replica plus its live routing inputs.
type replicaState struct {
	Replica
	m *replicaMetrics
	// inflight counts attempts currently executing against this
	// replica (launched, not yet completed or abandoned-and-drained).
	inflight atomic.Int64
	// ewmaNs is the exponentially-weighted moving average of attempt
	// latency in nanoseconds (0 = no sample yet: an unknown replica
	// scores as instantly fast, so new capacity attracts traffic).
	ewmaNs atomic.Int64
	// coolUntil is the unix-nano instant until which this replica is
	// demoted to the back of every preference order (0 = healthy).
	coolUntil atomic.Int64
}

// ewmaAlpha weights the newest latency sample in the moving average.
const ewmaAlpha = 0.25

const (
	defaultLoadFactor   = 2.0
	defaultFailCooldown = time.Second
)

// observeLatency folds one completed attempt's latency into the EWMA.
func (r *replicaState) observeLatency(d time.Duration) {
	ns := d.Nanoseconds()
	for {
		old := r.ewmaNs.Load()
		nw := ns
		if old != 0 {
			nw = old + int64(ewmaAlpha*float64(ns-old))
		}
		if r.ewmaNs.CompareAndSwap(old, nw) {
			return
		}
	}
}

// loadScore ranks replicas for the least-loaded pick: expected latency
// scaled by the queue already in front of it. +1s keep zero-valued
// inputs ordered (no sample beats any sample; an idle replica beats a
// busy one at equal EWMA).
func (r *replicaState) loadScore() float64 {
	return float64(r.ewmaNs.Load()+1) * float64(r.inflight.Load()+1)
}

func (r *replicaState) cooling(now time.Time) bool {
	return r.coolUntil.Load() > now.UnixNano()
}

func (r *replicaState) markFailure(now time.Time, cooldown time.Duration) {
	r.coolUntil.Store(now.Add(cooldown).UnixNano())
}

func (r *replicaState) markSuccess() {
	r.coolUntil.Store(0)
}

// rendezvousWeight is the highest-random-weight score of one (key,
// replica) pair: independent 64-bit FNV-1a hashes of the URL and the
// key, combined and avalanched through a SplitMix64 finalizer. The
// finalizer matters: FNV alone over the concatenation leaves the
// cross-key weight *ordering* dominated by the per-URL prefix state
// (some replicas then win almost every key), while the multiply-xor
// cascade decorrelates them. The URL (not the ordinal) is hashed so
// the mapping survives coordinator restarts and list reorderings, and
// removing one replica moves only the keys that preferred it.
func rendezvousWeight(key, replicaURL string) uint64 {
	hu := fnv.New64a()
	hu.Write([]byte(replicaURL))
	hk := fnv.New64a()
	hk.Write([]byte(key))
	x := hu.Sum64() ^ hk.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// shardSet is one shard's replica set.
type shardSet struct {
	name     string
	replicas []*replicaState
}

// order returns replica ordinals in routing-preference order for one
// request key: rendezvous weight descending, then cooling replicas
// stably demoted to the back. Deterministic for a fixed (key,
// topology, cooldown) state.
func (s *shardSet) order(key string, now time.Time) []int {
	ord := make([]int, len(s.replicas))
	for i := range ord {
		ord[i] = i
	}
	if len(ord) == 1 {
		return ord
	}
	sort.SliceStable(ord, func(a, b int) bool {
		return rendezvousWeight(key, s.replicas[ord[a]].URL) >
			rendezvousWeight(key, s.replicas[ord[b]].URL)
	})
	healthy := ord[:0:len(ord)]
	var cooling []int
	for _, i := range ord {
		if s.replicas[i].cooling(now) {
			cooling = append(cooling, i)
		} else {
			healthy = append(healthy, i)
		}
	}
	return append(healthy, cooling...)
}

// pickFirst chooses the first-attempt target from a preference order:
// the affinity head, unless its load score exceeds loadFactor× the
// lightest replica's — then the least-loaded replica is promoted (ties
// keep the earlier preference, so the pick is deterministic).
func (s *shardSet) pickFirst(ord []int, loadFactor float64) int {
	best := ord[0]
	bestScore := s.replicas[best].loadScore()
	for _, i := range ord[1:] {
		if sc := s.replicas[i].loadScore(); sc < bestScore {
			best, bestScore = i, sc
		}
	}
	if s.replicas[ord[0]].loadScore() <= loadFactor*bestScore {
		return ord[0]
	}
	return best
}

// hedgeTarget chooses the hedged retry's target: the most-preferred
// replica that is not the first target. A single-replica shard hedges
// against its only endpoint (the pre-replica behavior: the retry still
// beats a dropped connection).
func (s *shardSet) hedgeTarget(ord []int, first int) int {
	for _, i := range ord {
		if i != first {
			return i
		}
	}
	return first
}

// buildShards validates and normalizes Config.Shards into shard sets.
func buildShards(topology [][]Endpoint) ([]*shardSet, error) {
	if len(topology) == 0 {
		return nil, fmt.Errorf("cluster: no shards configured")
	}
	shards := make([]*shardSet, 0, len(topology))
	for i, reps := range topology {
		if len(reps) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no replicas", i)
		}
		sh := &shardSet{name: fmt.Sprintf("shard%d", i)}
		for j, raw := range reps {
			addr := strings.TrimSpace(string(raw))
			if addr == "" {
				return nil, fmt.Errorf("cluster: empty replica address at shard %d position %d", i, j)
			}
			if !strings.Contains(addr, "://") {
				addr = "http://" + addr
			}
			u, err := url.Parse(addr)
			if err != nil || u.Host == "" {
				return nil, fmt.Errorf("cluster: bad replica address %q", raw)
			}
			sh.replicas = append(sh.replicas, &replicaState{
				Replica: Replica{
					Shard: sh.name,
					Name:  fmt.Sprintf("%s/r%d@%s", sh.name, j, u.Host),
					URL:   strings.TrimRight(addr, "/"),
				},
				m: &replicaMetrics{sink: obs.NewSink()},
			})
		}
		shards = append(shards, sh)
	}
	return shards, nil
}
