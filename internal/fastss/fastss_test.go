package fastss

import (
	"math/rand"
	"reflect"
	"testing"
)

var sampleVocab = []string{
	"tree", "trees", "trie", "icde", "icdt", "insurance", "instance",
	"health", "architecture", "barrier", "reef", "great", "fpga",
	"keyword", "query", "queries", "cleaning", "clean", "xml",
	"probabilistic", "probability", "verification", "vverification",
}

func TestSearchBasic(t *testing.T) {
	ix := Build(sampleVocab, Config{MaxErrors: 1})
	got := ix.Search("tree")
	want := []Match{{"tree", 0}, {"trees", 1}, {"trie", 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Search(tree)=%v want %v", got, want)
	}
}

func TestSearchMissingWord(t *testing.T) {
	ix := Build(sampleVocab, Config{MaxErrors: 1})
	got := ix.Search("icdx")
	want := []Match{{"icde", 1}, {"icdt", 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Search(icdx)=%v want %v", got, want)
	}
}

func TestSearchNoMatch(t *testing.T) {
	ix := Build(sampleVocab, Config{MaxErrors: 1})
	if got := ix.Search("zzzzzzz"); len(got) != 0 {
		t.Errorf("Search(zzzzzzz)=%v", got)
	}
}

func TestSearchEps2(t *testing.T) {
	ix := Build(sampleVocab, Config{MaxErrors: 2})
	got := ix.Search("insurance")
	// instance is within 2 edits of insurance.
	found := false
	for _, m := range got {
		if m.Word == "instance" && m.Dist == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("Search(insurance) missing instance: %v", got)
	}
}

func TestDuplicatesIndexedOnce(t *testing.T) {
	ix := Build([]string{"tree", "tree", "tree"}, Config{MaxErrors: 1})
	if ix.Size() != 1 {
		t.Errorf("Size=%d want 1", ix.Size())
	}
	if got := ix.Search("tree"); len(got) != 1 {
		t.Errorf("Search=%v", got)
	}
}

func TestDeletionNeighborhood(t *testing.T) {
	nb := deletionNeighborhood("abc", 1)
	want := []string{"abc", "bc", "ac", "ab"}
	if len(nb) != len(want) {
		t.Fatalf("neighborhood=%v", nb)
	}
	for _, w := range want {
		if _, ok := nb[w]; !ok {
			t.Errorf("missing %q", w)
		}
	}
	nb0 := deletionNeighborhood("abc", 0)
	if len(nb0) != 1 {
		t.Errorf("0-deletion neighborhood=%v", nb0)
	}
}

// Differential test: FastSS (plain and partitioned) must return exactly
// what brute force returns, over random vocabularies and queries.
func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := []rune("abcdef")
	randWord := func(min, max int) string {
		n := min + rng.Intn(max-min+1)
		r := make([]rune, n)
		for i := range r {
			r[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(r)
	}
	for _, cfg := range []Config{
		{MaxErrors: 1},
		{MaxErrors: 2},
		{MaxErrors: 3},
		{MaxErrors: 1, PartitionLen: 6},
		{MaxErrors: 2, PartitionLen: 6},
		{MaxErrors: 2, PartitionLen: 4},
		{MaxErrors: 3, PartitionLen: 8},
	} {
		vocab := make([]string, 300)
		for i := range vocab {
			vocab[i] = randWord(3, 12)
		}
		ix := Build(vocab, cfg)
		for i := 0; i < 60; i++ {
			q := randWord(2, 13)
			got := ix.Search(q)
			want := BruteForce(vocab, q, cfg.MaxErrors)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cfg=%+v q=%q got=%v want=%v", cfg, q, got, want)
			}
		}
	}
}

func TestPartitioningShrinksIndex(t *testing.T) {
	long := []string{"verification", "architecture", "probabilistic", "understanding"}
	plain := Build(long, Config{MaxErrors: 2})
	part := Build(long, Config{MaxErrors: 2, PartitionLen: 6})
	if part.Buckets() >= plain.Buckets() {
		t.Errorf("partitioned buckets %d not smaller than plain %d", part.Buckets(), plain.Buckets())
	}
}

func TestNegativeMaxErrors(t *testing.T) {
	ix := New(Config{MaxErrors: -3})
	ix.Add("tree")
	got := ix.Search("tree")
	if len(got) != 1 || got[0].Dist != 0 {
		t.Errorf("Search=%v", got)
	}
}

func BenchmarkFastSSSearch(b *testing.B) {
	ix := Build(sampleVocab, Config{MaxErrors: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search("architecure")
	}
}

func BenchmarkBruteForceSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BruteForce(sampleVocab, "architecure", 2)
	}
}
