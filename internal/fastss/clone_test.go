package fastss

import (
	"reflect"
	"sync"
	"testing"
)

func TestCloneCopyOnWrite(t *testing.T) {
	ix := Build([]string{"tree", "trie", "clean"}, Config{MaxErrors: 1})
	before := ix.Search("tree")

	c := ix.Clone()
	c.Add("trees")
	if ix.Size() != 3 {
		t.Errorf("original grew to %d words", ix.Size())
	}
	if c.Size() != 4 {
		t.Errorf("clone size=%d want 4", c.Size())
	}
	if got := ix.Search("tree"); !reflect.DeepEqual(got, before) {
		t.Errorf("original results changed after clone.Add:\n got=%v\nwant=%v", got, before)
	}
	found := false
	for _, m := range c.Search("tree") {
		if m.Word == "trees" {
			found = true
		}
	}
	if !found {
		t.Error("clone does not find its own added word")
	}
}

// Two clones of the same parent share bucket slices; an Add on one must
// not leak into the other (the capped-slice contract: append always
// reallocates).
func TestCloneSiblingsIndependent(t *testing.T) {
	ix := Build([]string{"tree", "trie"}, Config{MaxErrors: 1})
	c1 := ix.Clone()
	c2 := ix.Clone()
	c1.Add("treat")
	c2.Add("crews")

	for _, m := range c1.Search("crews") {
		if m.Word == "crews" {
			t.Error("c2's word leaked into c1")
		}
	}
	for _, m := range c2.Search("treat") {
		if m.Word == "treat" {
			t.Error("c1's word leaked into c2")
		}
	}
}

// Search on the original must be safe while a clone is being extended
// (run under -race).
func TestCloneConcurrentSearch(t *testing.T) {
	ix := Build([]string{"tree", "trie", "clean", "clear"}, Config{MaxErrors: 1})
	want := ix.Search("tree")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := ix.Search("tree"); !reflect.DeepEqual(got, want) {
					t.Error("search diverged during concurrent clone growth")
					return
				}
			}
		}()
	}
	c := ix.Clone()
	for _, w := range []string{"trees", "tread", "cleans", "crews", "tram"} {
		c.Add(w)
	}
	close(stop)
	wg.Wait()
}
