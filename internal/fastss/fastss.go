// Package fastss implements the FastSS approximate string matching
// index used by XClean to generate the ε-variant sets var_ε(q) of query
// keywords (Section V-A of the paper).
//
// The idea: if ed(s,t) ≤ ε, then deleting at most ε characters from
// each of s and t can produce a common string, so the ε-deletion
// neighborhoods of s and t intersect. The index maps every deletion
// variant of every vocabulary word to the words that produce it; a
// query generates its own deletion neighborhood, probes the index, and
// verifies candidates with a banded edit-distance computation.
//
// For long tokens the deletion neighborhood grows as C(l,ε), so the
// index optionally partitions long words into two halves and indexes
// each half with an error budget of ⌊ε/2⌋ (pigeonhole: if the word is
// within ε errors, one half is within ⌊ε/2⌋ errors of the aligned
// query prefix/suffix). The paper calls this the "partitioned version"
// with tuning parameter l_p.
package fastss

import (
	"sort"
	"sync"
	"sync/atomic"
	"unicode/utf8"

	"xclean/internal/editdist"
)

// Config tunes index construction.
type Config struct {
	// MaxErrors is ε, the maximum edit distance matched. Must be ≥ 0.
	MaxErrors int
	// PartitionLen is l_p: words strictly longer than this are indexed
	// in partitioned form. 0 disables partitioning.
	PartitionLen int
}

// Match is one vocabulary word within the error threshold of a query.
type Match struct {
	Word string
	Dist int
}

type bucketKey struct {
	part    int8 // 0 = whole word, 1 = first half, 2 = second half
	variant string
}

// Index is an ε-deletion-neighborhood index over a vocabulary. Words
// can be added at any time (incremental vocabulary growth); Add is not
// safe to call concurrently with Search. To grow the vocabulary while
// the index keeps serving Search traffic, extend a Clone and swap it
// in (the copy-on-write contract engine Refresh relies on).
type Index struct {
	cfg     Config
	words   []string
	ids     map[string]int32
	buckets map[bucketKey][]int32
	// halfLens[i] is the rune length of the first half of partitioned
	// word i, or 0 if word i is indexed whole.
	halfLens []int32
	// memo interns completed Search results per query word. Keyword
	// neighborhoods repeat heavily across queries (the same misspellings
	// recur, and every engine Refresh re-probes its working set), so a
	// hit skips both the deletion-neighborhood enumeration and the
	// banded verification. The memo is bounded (memoCap) and is replaced
	// wholesale on Add, which by the Index contract never races with
	// Search.
	memo *searchMemo
}

// memoCap bounds the per-index Search memo: at most this many distinct
// query words are interned; further misses are computed but not stored.
const memoCap = 4096

type searchMemo struct {
	n atomic.Int32
	m sync.Map // query word -> []Match
}

// New returns an empty index with the given configuration.
func New(cfg Config) *Index {
	if cfg.MaxErrors < 0 {
		cfg.MaxErrors = 0
	}
	return &Index{
		cfg:     cfg,
		ids:     make(map[string]int32),
		buckets: make(map[bucketKey][]int32),
		memo:    &searchMemo{},
	}
}

// Build constructs an index over words. Duplicate words are indexed
// once.
func Build(words []string, cfg Config) *Index {
	ix := New(cfg)
	for _, w := range words {
		ix.Add(w)
	}
	return ix
}

// Clone returns a copy that can be extended with Add without mutating
// any state visible to the receiver — the copy-on-write step of
// engine Refresh. The maps are copied; the word and bucket slices are
// shared but capped at their current length, so an Add on the clone
// always reallocates instead of writing into shared backing arrays.
// Cloning costs O(vocabulary + buckets) map copies, far cheaper than
// rebuilding the deletion neighborhoods from scratch.
func (ix *Index) Clone() *Index {
	c := &Index{
		cfg:      ix.cfg,
		words:    ix.words[:len(ix.words):len(ix.words)],
		ids:      make(map[string]int32, len(ix.ids)+1),
		buckets:  make(map[bucketKey][]int32, len(ix.buckets)+1),
		halfLens: ix.halfLens[:len(ix.halfLens):len(ix.halfLens)],
		memo:     &searchMemo{},
	}
	for w, id := range ix.ids {
		c.ids[w] = id
	}
	for k, lst := range ix.buckets {
		c.buckets[k] = lst[:len(lst):len(lst)]
	}
	return c
}

// Add indexes one vocabulary word; already-indexed words are ignored.
func (ix *Index) Add(word string) {
	if _, ok := ix.ids[word]; ok {
		return
	}
	if ix.memo == nil {
		ix.memo = &searchMemo{}
	} else if ix.memo.n.Load() != 0 {
		// Interned results predate this word; drop them. During bulk
		// Build the memo is empty, so no churn.
		ix.memo = &searchMemo{}
	}
	id := int32(len(ix.words))
	ix.ids[word] = id
	ix.words = append(ix.words, word)
	runes := []rune(word)
	if ix.cfg.PartitionLen > 0 && len(runes) > ix.cfg.PartitionLen && ix.cfg.MaxErrors > 0 {
		h := (len(runes) + 1) / 2
		ix.halfLens = append(ix.halfLens, int32(h))
		halfErr := ix.cfg.MaxErrors / 2
		ix.addVariants(1, string(runes[:h]), halfErr, id)
		ix.addVariants(2, string(runes[h:]), halfErr, id)
		return
	}
	ix.halfLens = append(ix.halfLens, 0)
	ix.addVariants(0, word, ix.cfg.MaxErrors, id)
}

func (ix *Index) addVariants(part int8, s string, maxDel int, id int32) {
	forEachDeletion(s, maxDel, func(v string) {
		key := bucketKey{part, v}
		lst := ix.buckets[key]
		if n := len(lst); n > 0 && lst[n-1] == id {
			return // same word, another variant path
		}
		ix.buckets[key] = append(lst, id)
	})
}

// nbhScratch holds the reusable state of one deletion-neighborhood
// enumeration: the dedup set, the breadth-first frontiers, and the
// rune/byte work buffers. Pooled so steady-state enumeration allocates
// only the distinct variant strings themselves.
type nbhScratch struct {
	seen     map[string]struct{}
	frontier []string
	next     []string
	runes    []rune
	buf      []byte
}

var nbhPool = sync.Pool{
	New: func() any { return &nbhScratch{seen: make(map[string]struct{}, 64)} },
}

// forEachDeletion invokes fn once per distinct string obtainable from s
// by deleting at most maxDel runes (including s itself). Enumeration is
// breadth-first by deletion count; duplicates arising from different
// deletion orders are visited once. The byte-buffer dedup probe
// (string(sc.buf) inside a map index) does not allocate, so only novel
// variants materialize a string.
func forEachDeletion(s string, maxDel int, fn func(v string)) {
	fn(s)
	if maxDel <= 0 || s == "" {
		return
	}
	sc := nbhPool.Get().(*nbhScratch)
	sc.seen[s] = struct{}{}
	frontier := append(sc.frontier[:0], s)
	next := sc.next[:0]
	for level := 0; level < maxDel && len(frontier) > 0; level++ {
		next = next[:0]
		for _, t := range frontier {
			r := sc.runes[:0]
			for _, c := range t {
				r = append(r, c)
			}
			sc.runes = r
			for i := range r {
				buf := sc.buf[:0]
				for j, c := range r {
					if j != i {
						buf = utf8.AppendRune(buf, c)
					}
				}
				sc.buf = buf
				if _, ok := sc.seen[string(buf)]; ok {
					continue
				}
				v := string(buf)
				sc.seen[v] = struct{}{}
				fn(v)
				next = append(next, v)
			}
		}
		frontier, next = next, frontier
	}
	for k := range sc.seen {
		delete(sc.seen, k)
	}
	// frontier/next may have been swapped an odd number of times; store
	// both so their capacity survives either way.
	sc.frontier, sc.next = frontier[:0], next[:0]
	nbhPool.Put(sc)
}

// deletionNeighborhood materializes the ≤maxDel deletion neighborhood
// of s as a set (the reference form used by tests; the hot paths stream
// through forEachDeletion instead).
func deletionNeighborhood(s string, maxDel int) map[string]struct{} {
	out := make(map[string]struct{})
	forEachDeletion(s, maxDel, func(v string) { out[v] = struct{}{} })
	return out
}

// Search returns every vocabulary word within ε edit errors of q,
// sorted by (distance, word). This is var_ε(q) of the paper; note it
// includes q itself when q is a vocabulary term. Results may be served
// from the per-index memo and must not be mutated by callers.
func (ix *Index) Search(q string) []Match {
	memo := ix.memo
	if memo != nil {
		if v, ok := memo.m.Load(q); ok {
			return v.([]Match)
		}
	}
	matches := ix.search(q)
	if memo != nil && memo.n.Load() < memoCap {
		if _, loaded := memo.m.LoadOrStore(q, matches); !loaded {
			memo.n.Add(1)
		}
	}
	return matches
}

// search is the uncached Search body.
func (ix *Index) search(q string) []Match {
	eps := ix.cfg.MaxErrors
	cand := make(map[int32]struct{})

	// Whole-word probes.
	forEachDeletion(q, eps, func(v string) {
		for _, id := range ix.buckets[bucketKey{0, v}] {
			cand[id] = struct{}{}
		}
	})

	// Partitioned probes: enumerate prefixes (for first halves) and
	// suffixes (for second halves) of q in the alignment window, then
	// their ⌊ε/2⌋-deletion variants.
	if ix.cfg.PartitionLen > 0 && eps > 0 {
		halfErr := eps / 2
		runes := []rune(q)
		probe := func(part int8, piece string) {
			forEachDeletion(piece, halfErr, func(v string) {
				for _, id := range ix.buckets[bucketKey{part, v}] {
					cand[id] = struct{}{}
				}
			})
		}
		// Any indexed word w has |w| ∈ [|q|-ε, |q|+ε] if it matches, and
		// first-half length h = ⌈|w|/2⌉. The aligned query prefix has
		// length within ⌊ε/2⌋ of h. Enumerate that window of prefix
		// lengths (and symmetrically suffix lengths).
		minH := (len(runes)-eps+1)/2 - halfErr
		maxH := (len(runes)+eps+1)/2 + halfErr
		if minH < 0 {
			minH = 0
		}
		for p := minH; p <= maxH && p <= len(runes); p++ {
			probe(1, string(runes[:p]))
		}
		// Second halves have length |w| - ⌈|w|/2⌉ = ⌊|w|/2⌋.
		minS := (len(runes)-eps)/2 - halfErr
		maxS := (len(runes)+eps)/2 + halfErr
		if minS < 0 {
			minS = 0
		}
		for s := minS; s <= maxS && s <= len(runes); s++ {
			probe(2, string(runes[len(runes)-s:]))
		}
	}

	var matches []Match
	for id := range cand {
		w := ix.words[id]
		if d, ok := editdist.WithinK(q, w, eps); ok {
			matches = append(matches, Match{Word: w, Dist: d})
		}
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Dist != matches[j].Dist {
			return matches[i].Dist < matches[j].Dist
		}
		return matches[i].Word < matches[j].Word
	})
	return matches
}

// BruteForce scans the whole vocabulary with the banded verifier. It is
// the reference implementation used in tests and the variant-generation
// ablation benchmark.
func BruteForce(words []string, q string, eps int) []Match {
	var matches []Match
	seen := make(map[string]bool)
	for _, w := range words {
		if seen[w] {
			continue
		}
		seen[w] = true
		if d, ok := editdist.WithinK(q, w, eps); ok {
			matches = append(matches, Match{Word: w, Dist: d})
		}
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Dist != matches[j].Dist {
			return matches[i].Dist < matches[j].Dist
		}
		return matches[i].Word < matches[j].Word
	})
	return matches
}

// Size is the number of indexed words.
func (ix *Index) Size() int { return len(ix.words) }

// Buckets is the number of deletion-variant buckets (an index-size
// diagnostic; the paper discusses the space/time trade-off of l_p).
func (ix *Index) Buckets() int { return len(ix.buckets) }
