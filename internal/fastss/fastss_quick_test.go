package fastss

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// randomVocab builds a vocabulary of lowercase words of varied length.
func randomVocab(rng *rand.Rand, n int) []string {
	seen := map[string]bool{}
	var out []string
	for len(out) < n {
		l := 3 + rng.Intn(12)
		b := make([]byte, l)
		for i := range b {
			b[i] = byte('a' + rng.Intn(6)) // small alphabet: many near-misses
		}
		w := string(b)
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Strings(out)
	return out
}

// TestSearchMatchesBruteForceQuick: for random vocabularies and random
// queries, the FastSS index must return exactly the brute-force
// edit-distance neighborhood, for both plain and partitioned indexes.
func TestSearchMatchesBruteForceQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vocab := randomVocab(r, 60)
		eps := 1 + r.Intn(2)
		for _, lp := range []int{0, 6} {
			ix := Build(vocab, Config{MaxErrors: eps, PartitionLen: lp})
			for trial := 0; trial < 5; trial++ {
				// Query: a perturbed vocabulary word or a random string.
				var q string
				if r.Intn(2) == 0 {
					q = vocab[r.Intn(len(vocab))]
					if len(q) > 4 {
						i := r.Intn(len(q))
						q = q[:i] + string(rune('a'+r.Intn(8))) + q[i+1:]
					}
				} else {
					q = randomVocab(r, 1)[0]
				}
				got := ix.Search(q)
				want := BruteForce(vocab, q, eps)
				if !matchesEqual(got, want) {
					t.Logf("vocab=%v eps=%d lp=%d q=%q\ngot:  %v\nwant: %v",
						vocab, eps, lp, q, got, want)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func matchesEqual(a, b []Match) bool {
	key := func(ms []Match) []Match {
		out := append([]Match(nil), ms...)
		sort.Slice(out, func(i, j int) bool {
			if out[i].Word != out[j].Word {
				return out[i].Word < out[j].Word
			}
			return out[i].Dist < out[j].Dist
		})
		return out
	}
	return reflect.DeepEqual(key(a), key(b))
}
