package snapfile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"

	"xclean/internal/invindex"
	"xclean/internal/postings"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

func blockSize() int { return postings.BlockSize }

// OpenOptions tunes Open.
type OpenOptions struct {
	// NoMmap forces the portability fallback: the file is read into a
	// heap buffer instead of being memory-mapped. Queries behave
	// identically; warm-start and resident set scale with the file.
	NoMmap bool
}

// Reader serves one snapshot segment directly off its on-disk bytes.
// It implements invindex.Source, so internal/core scans against it
// exactly as against a heap index: the vocabulary and node tables are
// binary-searched in place, posting lists stream from mmap'd block
// payloads through the codec's skip tables, and nothing except the
// (tiny) path table is materialized at open. All methods are safe for
// concurrent use.
//
// Unmapping: Close unmaps/frees the underlying buffer and must only be
// called once no query can still touch the reader (a query racing a
// munmap would fault). Readers dropped without Close unmap via a
// finalizer, which is what makes catalog idle-eviction safe: eviction
// just drops the reference, and the address space is reclaimed after
// the last in-flight query's engine becomes unreachable.
type Reader struct {
	data  []byte
	mm    *mapping // nil under NoMmap
	path  string
	flags uint32

	// section table: id → payload slice into data.
	secs map[uint32][]byte

	// meta scalars.
	nodeCount  int
	maxDepth   int
	totalTok   int64
	vocabTotal int64
	tokens     int
	pathCount  int
	subCount   int
	biCount    int
	storedN    int
	opts       tokenizer.Options

	paths *xmltree.PathTable

	// typeCache memoizes decoded type lists per token; type inference
	// probes the same tokens repeatedly per query, and the heap backend
	// returns cached slices, so the mmap backend matches its
	// allocation profile for touched tokens only.
	typeCache sync.Map // string → []invindex.TypeCount

	closeOnce sync.Once
}

// Open maps the snapshot at path and validates its structure: magic,
// section table CRC, footer (end magic + recorded file length, which
// catches truncation without reading the body), section bounds, and
// the checksums of the materialized meta and paths sections. The work
// is O(schema), independent of corpus size; use Verify for a full
// checksum pass.
func Open(path string, opts OpenOptions) (*Reader, error) {
	var (
		data []byte
		mm   *mapping
		err  error
	)
	if opts.NoMmap {
		data, err = os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("snapfile: %w", err)
		}
	} else {
		mm, err = mapFile(path)
		if err != nil {
			return nil, fmt.Errorf("snapfile: %w", err)
		}
		data = mm.data
	}
	r := &Reader{data: data, mm: mm, path: path}
	if err := r.parse(); err != nil {
		r.Close()
		return nil, err
	}
	if mm != nil {
		// Reclaim the mapping even if the owner forgets Close (catalog
		// eviction deliberately relies on this; see type comment).
		runtime.SetFinalizer(r, func(r *Reader) { r.unmap() })
	}
	return r, nil
}

func (r *Reader) parse() error {
	d := r.data
	if len(d) < headerLen+footTailLen {
		return corruptf("%s: file too short (%d bytes)", r.path, len(d))
	}
	if string(d[:8]) != magic {
		return corruptf("%s: bad magic %q", r.path, d[:8])
	}
	count := int(getU32(d[8:]))
	r.flags = getU32(d[12:])
	tableCRC := getU32(d[16:])
	if count <= 0 || count > 1024 {
		return corruptf("%s: implausible section count %d", r.path, count)
	}
	tableEnd := headerLen + secEntryLen*count
	footLen := footEntryLen*count + footTailLen
	if tableEnd+footLen > len(d) {
		return corruptf("%s: truncated (sections do not fit)", r.path)
	}
	table := d[headerLen:tableEnd]
	if crcOf(table) != tableCRC {
		return corruptf("%s: section table checksum mismatch", r.path)
	}
	if string(d[len(d)-8:]) != endMagic {
		return corruptf("%s: truncated (end marker missing)", r.path)
	}
	if got := getU64(d[len(d)-16:]); got != uint64(len(d)) {
		return corruptf("%s: truncated (footer says %d bytes, have %d)", r.path, got, len(d))
	}
	footOff := len(d) - footLen
	r.secs = make(map[uint32][]byte, count)
	for i := 0; i < count; i++ {
		e := table[i*secEntryLen:]
		id := getU32(e[0:])
		off := getU64(e[8:])
		length := getU64(e[16:])
		if off < uint64(tableEnd) || off+length < off || off+length > uint64(footOff) {
			return corruptf("%s: section %d out of bounds", r.path, id)
		}
		if getU32(d[footOff+i*footEntryLen:]) != id {
			return corruptf("%s: footer/table section order mismatch", r.path)
		}
		if _, dup := r.secs[id]; dup {
			return corruptf("%s: duplicate section %d", r.path, id)
		}
		r.secs[id] = d[off : off+length]
	}
	// Verify and parse the two sections materialized at open.
	for _, id := range []uint32{secMeta, secPaths} {
		if err := r.verifySection(id); err != nil {
			return err
		}
	}
	if err := r.parseMeta(); err != nil {
		return err
	}
	return r.parsePaths()
}

// verifySection checks one section's footer CRC.
func (r *Reader) verifySection(id uint32) error {
	sec, ok := r.secs[id]
	if !ok {
		return corruptf("%s: section %d missing", r.path, id)
	}
	d := r.data
	count := int(getU32(d[8:]))
	footOff := len(d) - (footEntryLen*count + footTailLen)
	for i := 0; i < count; i++ {
		e := d[footOff+i*footEntryLen:]
		if getU32(e) == id {
			if crcOf(sec) != getU32(e[4:]) {
				return corruptf("%s: section %d checksum mismatch", r.path, id)
			}
			return nil
		}
	}
	return corruptf("%s: section %d has no footer checksum", r.path, id)
}

// Verify runs a full checksum pass over every section. It reads the
// whole file (sequential, page-cache friendly) and is the integrity
// check the catalog runs in the background after a warm-start.
func (r *Reader) Verify() error {
	for id := range r.secs {
		if err := r.verifySection(id); err != nil {
			return err
		}
	}
	return nil
}

func (r *Reader) parseMeta() error {
	m := r.secs[secMeta]
	read := 0
	uv := func() uint64 {
		if read < 0 {
			return 0 // poisoned by an earlier short read
		}
		v, n := binary.Uvarint(m[read:])
		if n <= 0 {
			read = -1 << 30 // poison: a later uv keeps failing
			return 0
		}
		read += n
		return v
	}
	ver := uv()
	if read < 0 {
		return corruptf("%s: truncated meta section", r.path)
	}
	if ver != formatVersion {
		return fmt.Errorf("snapfile: %s: unsupported snapshot version %d (want %d)", r.path, ver, formatVersion)
	}
	if bs := uv(); bs != uint64(blockSize()) {
		return fmt.Errorf("snapfile: %s: snapshot block size %d differs from build's %d", r.path, bs, blockSize())
	}
	r.nodeCount = int(uv())
	r.maxDepth = int(uv())
	r.totalTok = int64(uv())
	r.opts.MinLength = int(uv())
	tokFlags := uv()
	r.opts.KeepNumbers = tokFlags&1 != 0
	r.opts.KeepStopwords = tokFlags&2 != 0
	r.vocabTotal = int64(uv())
	r.tokens = int(uv())
	r.pathCount = int(uv())
	r.subCount = int(uv())
	r.biCount = int(uv())
	r.storedN = int(uv())
	if read < 0 {
		return corruptf("%s: truncated meta section", r.path)
	}
	// Structural cross-checks: every fixed-width section must match the
	// counts exactly, and offset-table sections must at least hold
	// their offset arrays. This is what makes all later record slicing
	// bounds-safe without per-access error paths.
	checks := []struct {
		id   uint32
		min  uint64
		want int64 // exact length; -1 = minimum only
	}{
		{secVocabRec, 0, int64(vocabRecLen * r.tokens)},
		{secSubKeys, uint64(8 * (r.subCount + 1)), -1},
		{secSubLens, 0, int64(4 * r.subCount)},
		{secPathStats, 0, int64(8*(r.pathCount+1) + 4*r.pathCount)},
		{secBigramKeys, uint64(8 * (r.biCount + 1)), -1},
		{secBigramVals, 0, int64(8 * r.biCount)},
	}
	if r.flags&flagStoredText != 0 {
		checks = append(checks,
			struct {
				id   uint32
				min  uint64
				want int64
			}{secStoredKeys, uint64(8 * (r.storedN + 1)), -1},
			struct {
				id   uint32
				min  uint64
				want int64
			}{secStoredTexts, uint64(8 * (r.storedN + 1)), -1},
		)
	}
	for _, c := range checks {
		sec, ok := r.secs[c.id]
		if !ok {
			return corruptf("%s: section %d missing", r.path, c.id)
		}
		if c.want >= 0 && int64(len(sec)) != c.want {
			return corruptf("%s: section %d is %d bytes, want %d", r.path, c.id, len(sec), c.want)
		}
		if c.want < 0 && uint64(len(sec)) < c.min {
			return corruptf("%s: section %d is %d bytes, want ≥ %d", r.path, c.id, len(sec), c.min)
		}
	}
	for _, id := range []uint32{secVocabNames, secPostings, secSkips, secTypes, secPathEnts} {
		if _, ok := r.secs[id]; !ok {
			return corruptf("%s: section %d missing", r.path, id)
		}
	}
	return nil
}

func (r *Reader) parsePaths() error {
	sec := r.secs[secPaths]
	parents := make([]int32, 0, r.pathCount)
	labels := make([]string, 0, r.pathCount)
	read := 0
	for i := 0; i < r.pathCount; i++ {
		p, n := binary.Varint(sec[read:])
		if n <= 0 {
			return corruptf("%s: truncated path table", r.path)
		}
		read += n
		ll, n := binary.Uvarint(sec[read:])
		if n <= 0 || ll > uint64(len(sec)-read-n) {
			return corruptf("%s: truncated path table", r.path)
		}
		read += n
		parents = append(parents, int32(p))
		labels = append(labels, string(sec[read:read+int(ll)]))
		read += int(ll)
	}
	if read != len(sec) {
		return corruptf("%s: %d trailing path-table bytes", r.path, len(sec)-read)
	}
	pt, err := xmltree.ImportPathTable(parents, labels)
	if err != nil {
		return corruptf("%s: %v", r.path, err)
	}
	r.paths = pt
	return nil
}

// Close unmaps the snapshot. The caller must guarantee no concurrent
// or later use of the reader or of any engine built over it.
func (r *Reader) Close() error {
	r.closeOnce.Do(func() {
		runtime.SetFinalizer(r, nil)
		r.unmap()
	})
	return nil
}

func (r *Reader) unmap() {
	if r.mm != nil {
		r.mm.close()
	}
}

// Path returns the file the reader was opened from.
func (r *Reader) Path() string { return r.path }

// SizeBytes is the snapshot file size.
func (r *Reader) SizeBytes() int64 { return int64(len(r.data)) }

// Mmapped reports whether the reader serves off a memory mapping
// (false under the NoMmap portability fallback).
func (r *Reader) Mmapped() bool { return r.mm != nil }

// ── vocabulary records ───────────────────────────────────────────────

type vocabRec struct {
	nameOff, postOff, skipOff, typeOff uint64
	count                              int64
	nameLen, postLen, skipLen, typeLen uint32
	df                                 uint32
}

func (r *Reader) rec(i int) vocabRec {
	b := r.secs[secVocabRec][i*vocabRecLen:]
	return vocabRec{
		nameOff: getU64(b[0:]),
		postOff: getU64(b[8:]),
		skipOff: getU64(b[16:]),
		typeOff: getU64(b[24:]),
		count:   int64(getU64(b[32:])),
		nameLen: getU32(b[40:]),
		postLen: getU32(b[44:]),
		skipLen: getU32(b[48:]),
		typeLen: getU32(b[52:]),
		df:      getU32(b[56:]),
	}
}

// sliceOf bounds-checks one record-driven range into a section; a
// violating range (corrupt record bytes) yields nil rather than a
// panic, and the caller degrades to "token absent".
func (r *Reader) sliceOf(id uint32, off uint64, length uint32) []byte {
	sec := r.secs[id]
	if off > uint64(len(sec)) || uint64(length) > uint64(len(sec))-off {
		return nil
	}
	return sec[off : off+uint64(length)]
}

func (r *Reader) tokenName(i int) []byte {
	rec := r.rec(i)
	return r.sliceOf(secVocabNames, rec.nameOff, rec.nameLen)
}

// findToken binary-searches the sorted vocabulary; returns -1 when
// absent.
func (r *Reader) findToken(tok string) int {
	i := sort.Search(r.tokens, func(i int) bool {
		return bytes.Compare(r.tokenName(i), []byte(tok)) >= 0
	})
	if i < r.tokens && bytes.Equal(r.tokenName(i), []byte(tok)) {
		return i
	}
	return -1
}

// list rebuilds the compressed posting list of record i over the
// mmap'd payload — O(blocks), no payload page faults.
func (r *Reader) list(i int) *postings.List {
	rec := r.rec(i)
	payload := r.sliceOf(secPostings, rec.postOff, rec.postLen)
	meta := r.sliceOf(secSkips, rec.skipOff, rec.skipLen)
	if meta == nil || (payload == nil && rec.postLen > 0) {
		return nil
	}
	l, err := postings.ListOverPayload(payload, meta)
	if err != nil {
		return nil
	}
	return l
}

// ── invindex.Source ──────────────────────────────────────────────────

// PathTable returns the materialized label-path table.
func (r *Reader) PathTable() *xmltree.PathTable { return r.paths }

// PathDepth is the depth of label path p.
func (r *Reader) PathDepth(p xmltree.PathID) int { return r.paths.Depth(p) }

// Vocabulary returns the binary-searched vocabulary view.
func (r *Reader) Vocabulary() invindex.VocabView { return (*vocabView)(r) }

// vocabView adapts the record table to invindex.VocabView.
type vocabView Reader

func (v *vocabView) r() *Reader { return (*Reader)(v) }

func (v *vocabView) Contains(w string) bool { return v.r().findToken(w) >= 0 }

func (v *vocabView) Count(w string) int64 {
	if i := v.r().findToken(w); i >= 0 {
		return v.r().rec(i).count
	}
	return 0
}

func (v *vocabView) Total() int64 { return v.r().vocabTotal }

func (v *vocabView) Size() int { return v.r().tokens }

// Prob mirrors tokenizer.Vocabulary.Prob operation-for-operation so
// snapshot-backed scores match heap scores to the last bit.
func (v *vocabView) Prob(w string) float64 {
	r := v.r()
	denom := float64(r.vocabTotal) + float64(r.tokens)
	if denom == 0 {
		return 0
	}
	i := r.findToken(w)
	if i < 0 {
		return 1 / denom
	}
	return (float64(r.rec(i).count) + 1) / denom
}

// VocabList materializes the sorted token list (engine construction
// builds the FastSS neighborhood index over it; O(vocabulary), which
// by Heaps' law grows far slower than the corpus).
func (r *Reader) VocabList() []string {
	out := make([]string, r.tokens)
	for i := range out {
		out[i] = string(r.tokenName(i))
	}
	return out
}

// MergedListFor builds the Section V-C merged list over mmap-backed
// compressed cursors.
func (r *Reader) MergedListFor(tokens []string) *invindex.MergedList {
	lists := make([]*postings.List, len(tokens))
	for i, tok := range tokens {
		if j := r.findToken(tok); j >= 0 {
			lists[i] = r.list(j)
		}
	}
	return invindex.MergedListFromLists(tokens, lists)
}

// DocFreq is df(w).
func (r *Reader) DocFreq(tok string) int {
	if i := r.findToken(tok); i >= 0 {
		return int(r.rec(i).df)
	}
	return 0
}

// TypeList returns the (path, f_p^w) list of tok, decoding it from the
// type-blob section on first use and memoizing it.
func (r *Reader) TypeList(tok string) []invindex.TypeCount {
	if v, ok := r.typeCache.Load(tok); ok {
		return v.([]invindex.TypeCount)
	}
	i := r.findToken(tok)
	if i < 0 {
		return nil
	}
	rec := r.rec(i)
	blob := r.sliceOf(secTypes, rec.typeOff, rec.typeLen)
	tl := decodeTypeList(blob)
	v, _ := r.typeCache.LoadOrStore(tok, tl)
	return v.([]invindex.TypeCount)
}

func decodeTypeList(blob []byte) []invindex.TypeCount {
	read := 0
	uv := func() (uint64, bool) {
		v, n := binary.Uvarint(blob[read:])
		if n <= 0 {
			return 0, false
		}
		read += n
		return v, true
	}
	n, ok := uv()
	if !ok || n > uint64(len(blob)) { // ≥1 byte per entry
		return nil
	}
	out := make([]invindex.TypeCount, 0, n)
	path := int64(-1)
	for j := uint64(0); j < n; j++ {
		delta, ok1 := uv()
		f, ok2 := uv()
		if !ok1 || !ok2 || delta == 0 {
			return nil
		}
		path += int64(delta)
		out = append(out, invindex.TypeCount{Path: xmltree.PathID(path), F: int32(f)})
	}
	if read != len(blob) {
		return nil
	}
	return out
}

// ── subtree table ────────────────────────────────────────────────────

// heapEntry returns entry i of an offset-table section laid out by
// heapWithOffsets; nil on any bounds violation.
func (r *Reader) heapEntry(id uint32, n, i int) []byte {
	sec := r.secs[id]
	base := 8 * (n + 1)
	lo := getU64(sec[8*i:])
	hi := getU64(sec[8*(i+1):])
	// base ≤ len(sec) is guaranteed by the open-time size check, so
	// len(sec)-base cannot underflow; comparing hi against it directly
	// avoids base+hi overflowing on corrupt offsets.
	if lo > hi || hi > uint64(len(sec)-base) {
		return nil
	}
	return sec[uint64(base)+lo : uint64(base)+hi]
}

// subKey returns node key i.
func (r *Reader) subKey(i int) []byte { return r.heapEntry(secSubKeys, r.subCount, i) }

// findSubKey binary-searches the sorted node-key table; returns the
// first index whose key is ≥ key.
func (r *Reader) findSubKey(key string) int {
	return sort.Search(r.subCount, func(i int) bool {
		return bytes.Compare(r.subKey(i), []byte(key)) >= 0
	})
}

func (r *Reader) subLenAt(i int) int32 {
	return int32(getU32(r.secs[secSubLens][4*i:]))
}

// SubtreeLenKey is |D(r)| keyed by Dewey.Key.
func (r *Reader) SubtreeLenKey(key string) int32 {
	i := r.findSubKey(key)
	if i < r.subCount && bytes.Equal(r.subKey(i), []byte(key)) {
		return r.subLenAt(i)
	}
	return 0
}

// ── per-path statistics ──────────────────────────────────────────────

// NodesWithPath is N_p.
func (r *Reader) NodesWithPath(p xmltree.PathID) int32 {
	if int(p) >= r.pathCount {
		return 0
	}
	stats := r.secs[secPathStats]
	return int32(getU32(stats[8*(r.pathCount+1)+4*int(p):]))
}

// entRange returns the entity-index range of path p in secPathEnts.
func (r *Reader) entRange(p xmltree.PathID) (lo, hi int, ok bool) {
	if int(p) >= r.pathCount {
		return 0, 0, false
	}
	stats := r.secs[secPathStats]
	l := getU64(stats[8*int(p):])
	h := getU64(stats[8*(int(p)+1):])
	ents := r.secs[secPathEnts]
	if l > h || h > uint64(len(ents))/4 {
		return 0, 0, false
	}
	return int(l), int(h), true
}

func (r *Reader) entIdx(i int) int {
	return int(getU32(r.secs[secPathEnts][4*i:]))
}

// SubtreeLensByPath returns the subtree token counts of every node of
// path p. The slice is materialized per call; only the non-uniform
// prior construction and the exact-scoring ablation read it.
func (r *Reader) SubtreeLensByPath(p xmltree.PathID) []int32 {
	lo, hi, ok := r.entRange(p)
	if !ok || lo == hi {
		return nil
	}
	out := make([]int32, 0, hi-lo)
	for i := lo; i < hi; i++ {
		if j := r.entIdx(i); j < r.subCount {
			out = append(out, r.subLenAt(j))
		}
	}
	return out
}

// RootsByPath returns the Dewey keys of every node of path p.
func (r *Reader) RootsByPath(p xmltree.PathID) []string {
	lo, hi, ok := r.entRange(p)
	if !ok || lo == hi {
		return nil
	}
	out := make([]string, 0, hi-lo)
	for i := lo; i < hi; i++ {
		if j := r.entIdx(i); j < r.subCount {
			out = append(out, string(r.subKey(j)))
		}
	}
	return out
}

// ── bigrams ──────────────────────────────────────────────────────────

// BigramCount is the adjacency count of "w1 w2".
func (r *Reader) BigramCount(w1, w2 string) int64 {
	key := []byte(w1 + "\x00" + w2)
	i := sort.Search(r.biCount, func(i int) bool {
		return bytes.Compare(r.heapEntry(secBigramKeys, r.biCount, i), key) >= 0
	})
	if i < r.biCount && bytes.Equal(r.heapEntry(secBigramKeys, r.biCount, i), key) {
		return int64(getU64(r.secs[secBigramVals][8*i:]))
	}
	return 0
}

// BigramTableSize is the number of distinct adjacent token pairs.
func (r *Reader) BigramTableSize() int { return r.biCount }

// ── scalars ──────────────────────────────────────────────────────────

// NodeCount is the number of tree nodes.
func (r *Reader) NodeCount() int { return r.nodeCount }

// MaxDepth is the depth of the deepest node.
func (r *Reader) MaxDepth() int { return r.maxDepth }

// TotalTokens is the corpus length in kept tokens.
func (r *Reader) TotalTokens() int64 { return r.totalTok }

// TokenizerOptions returns the indexing tokenizer options.
func (r *Reader) TokenizerOptions() tokenizer.Options { return r.opts }

// ── stored text ──────────────────────────────────────────────────────

// HasStoredText reports whether the snapshot carries preview text.
func (r *Reader) HasStoredText() bool { return r.flags&flagStoredText != 0 }

// SubtreeText mirrors invindex.Index.SubtreeText over the mmap'd
// stored-text tables.
func (r *Reader) SubtreeText(root xmltree.Dewey, maxLen int) string {
	if !r.HasStoredText() {
		return ""
	}
	rk := []byte(root.Key())
	i := sort.Search(r.storedN, func(i int) bool {
		return bytes.Compare(r.heapEntry(secStoredKeys, r.storedN, i), rk) >= 0
	})
	var b strings.Builder
	runes := 0
	for ; i < r.storedN; i++ {
		k := r.heapEntry(secStoredKeys, r.storedN, i)
		if len(k) < len(rk) || !bytes.Equal(k[:len(rk)], rk) {
			break // left the subtree
		}
		text := r.heapEntry(secStoredTexts, r.storedN, i)
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		for _, rn := range string(text) {
			if maxLen > 0 && runes >= maxLen {
				b.WriteString("…")
				return b.String()
			}
			b.WriteRune(rn)
			runes++
		}
	}
	return b.String()
}

// ── materialization ──────────────────────────────────────────────────

// Materialize decodes the whole snapshot into a heap index — the
// escape hatch for operations that need mutable structures (live
// writes, entity sharding, legacy SLCA semantics). It is O(corpus) in
// time and memory, exactly what the mmap path avoids for reads.
func (r *Reader) Materialize() (*invindex.Index, error) {
	t := invindex.Tables{
		NodeCount: r.nodeCount,
		MaxDepth:  r.maxDepth,
		TotalTok:  r.totalTok,
		Opts:      r.opts,
	}
	t.PathParents, t.PathLabels = r.paths.Export()
	t.Tokens = r.VocabList()
	t.Counts = make([]int64, r.tokens)
	t.Lists = make([]*postings.List, r.tokens)
	t.TypeLists = make([][]invindex.TypeCount, r.tokens)
	for i, tok := range t.Tokens {
		rec := r.rec(i)
		t.Counts[i] = rec.count
		l := r.list(i)
		if l == nil {
			return nil, corruptf("%s: token %q: unreadable posting list", r.path, tok)
		}
		if l.Len() != int(rec.df) {
			return nil, corruptf("%s: token %q: list length %d != df %d", r.path, tok, l.Len(), rec.df)
		}
		// Copy payload bytes out of the mapping so the index outlives
		// the reader.
		t.Lists[i] = postings.Encode(l.Decode())
		t.TypeLists[i] = append([]invindex.TypeCount(nil), r.TypeList(tok)...)
	}
	t.SubtreeKeys = make([]string, r.subCount)
	t.SubtreeLens = make([]int32, r.subCount)
	for i := 0; i < r.subCount; i++ {
		t.SubtreeKeys[i] = string(r.subKey(i))
		t.SubtreeLens[i] = r.subLenAt(i)
	}
	t.PathNodes = make([]int32, r.pathCount)
	t.PathEnts = make([][]int32, r.pathCount)
	for p := 0; p < r.pathCount; p++ {
		t.PathNodes[p] = r.NodesWithPath(xmltree.PathID(p))
		lo, hi, ok := r.entRange(xmltree.PathID(p))
		if !ok {
			return nil, corruptf("%s: path %d: bad entity range", r.path, p)
		}
		if lo == hi {
			continue
		}
		ents := make([]int32, 0, hi-lo)
		for i := lo; i < hi; i++ {
			j := r.entIdx(i)
			if j >= r.subCount {
				return nil, corruptf("%s: path %d: entity index %d out of range", r.path, p, j)
			}
			ents = append(ents, int32(j))
		}
		t.PathEnts[p] = ents
	}
	t.BigramKeys = make([]string, r.biCount)
	t.BigramVals = make([]int64, r.biCount)
	for i := 0; i < r.biCount; i++ {
		t.BigramKeys[i] = string(r.heapEntry(secBigramKeys, r.biCount, i))
		t.BigramVals[i] = int64(getU64(r.secs[secBigramVals][8*i:]))
	}
	if r.HasStoredText() {
		t.StoredKeys = make([]string, r.storedN)
		t.StoredTexts = make([]string, r.storedN)
		for i := 0; i < r.storedN; i++ {
			t.StoredKeys[i] = string(r.heapEntry(secStoredKeys, r.storedN, i))
			t.StoredTexts[i] = string(r.heapEntry(secStoredTexts, r.storedN, i))
		}
	}
	ix, err := invindex.FromTables(t)
	if err != nil {
		return nil, fmt.Errorf("snapfile: materialize %s: %w", r.path, err)
	}
	return ix, nil
}

var _ invindex.Source = (*Reader)(nil)
var _ io.Closer = (*Reader)(nil)
