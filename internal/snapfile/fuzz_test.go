package snapfile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// FuzzOpen throws arbitrary bytes at the whole open path: header,
// section table, footer, truncation detection, meta/paths parsing,
// and — when a mutant gets that far — the lazy per-access bounds
// checks of every read API plus full materialization. Nothing here may
// panic or allocate proportionally to an unvalidated count; damage
// must surface as an Open error, a Verify error, or a degraded
// ("token absent") read.
func FuzzOpen(f *testing.F) {
	tree, err := xmltree.Parse(strings.NewReader(sampleXML))
	if err != nil {
		f.Fatal(err)
	}
	ix := invindex.BuildStored(tree, tokenizer.Options{})
	ix.Compact()
	seedPath := filepath.Join(f.TempDir(), "seed.seg")
	tab := ix.ExportTables()
	if err := WriteFile(seedPath, &tab); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:headerLen+3])
	f.Add([]byte{})
	f.Add([]byte(magic))
	mut := append([]byte(nil), valid...)
	mut[len(mut)/2] ^= 0x80
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.seg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		r, err := Open(path, OpenOptions{NoMmap: true})
		if err != nil {
			return
		}
		defer r.Close()
		// The structure parsed: every read API must now be total.
		_ = r.Verify()
		toks := r.VocabList()
		probe := toks
		if len(probe) > 16 {
			probe = probe[:16]
		}
		for _, tok := range append(probe, "absent") {
			v := r.Vocabulary()
			_ = v.Contains(tok)
			_ = v.Count(tok)
			_ = v.Prob(tok)
			_ = r.DocFreq(tok)
			_ = r.TypeList(tok)
			m := r.MergedListFor([]string{tok})
			for i := 0; i < 300; i++ {
				if _, ok := m.Next(); !ok {
					break
				}
			}
		}
		for p := xmltree.PathID(0); int(p) < r.PathTable().Len(); p++ {
			_ = r.PathDepth(p)
			_ = r.NodesWithPath(p)
			_ = r.SubtreeLensByPath(p)
			for _, key := range r.RootsByPath(p) {
				_ = r.SubtreeLenKey(key)
			}
		}
		_ = r.BigramCount("a", "b")
		_ = r.SubtreeText(xmltree.Dewey{1}, 64)
		_, _ = r.Materialize()
	})
}
