package snapfile

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestMagic prefixes every manifest file, ahead of the JSON body,
// so format sniffing works on the first read block alone.
const ManifestMagic = "XCMANIFEST1\n"

// ManifestExt and SegExt are the canonical file extensions.
const (
	ManifestExt = ".xcm"
	SegExt      = ".seg"
)

// Manifest lists the segment files of one snapshot, oldest first.
// Segment names are relative to the manifest's directory; a manifest
// plus its segments is a self-contained, relocatable snapshot.
type Manifest struct {
	Version  int      `json:"version"`
	Segments []string `json:"segments"`
}

// WriteManifest writes the manifest atomically next to its segments.
func WriteManifest(path string, m *Manifest) error {
	if m.Version == 0 {
		m.Version = 1
	}
	for _, s := range m.Segments {
		if s != filepath.Base(s) {
			return fmt.Errorf("snapfile: manifest segment %q is not a bare file name", s)
		}
	}
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("snapfile: manifest: %w", err)
	}
	data := append([]byte(ManifestMagic), body...)
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest-*")
	if err != nil {
		return fmt.Errorf("snapfile: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("snapfile: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapfile: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("snapfile: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapfile: %w", err)
	}
	return nil
}

// ReadManifest parses a manifest file.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapfile: %w", err)
	}
	if !bytes.HasPrefix(data, []byte(ManifestMagic)) {
		return nil, corruptf("%s: not a snapshot manifest", path)
	}
	var m Manifest
	if err := json.Unmarshal(data[len(ManifestMagic):], &m); err != nil {
		return nil, corruptf("%s: manifest body: %v", path, err)
	}
	if m.Version != 1 {
		return nil, fmt.Errorf("snapfile: %s: unsupported manifest version %d", path, m.Version)
	}
	if len(m.Segments) == 0 {
		return nil, corruptf("%s: manifest lists no segments", path)
	}
	for _, s := range m.Segments {
		if s == "" || s != filepath.Base(s) {
			return nil, corruptf("%s: manifest segment %q is not a bare file name", path, s)
		}
	}
	return &m, nil
}
