// Package snapfile implements the versioned, mmap-able columnar
// snapshot format of the index (DESIGN.md §16): one immutable `.seg`
// file per sealed segment, opened in milliseconds regardless of corpus
// size and scored directly off the page cache.
//
// Layout of one .seg file:
//
//	header (24 bytes)
//	  magic "XCSEG001"                          (8)
//	  u32 section count                         (4)
//	  u32 flags (bit 0: stored text present)    (4)
//	  u32 CRC-32 (IEEE) of the section table    (4)
//	  u32 reserved                              (4)
//	section table: count × {u32 id, u32 reserved, u64 off, u64 len}
//	sections (descriptions below)
//	footer
//	  count × {u32 id, u32 CRC-32 of the section payload}
//	  u64 total file length
//	  magic "XCSEGEND"                          (8)
//
// Vocabulary and node tables are sorted offset tables over
// length-implicit string heaps, binary-searchable in place; posting
// lists are the internal/postings block payloads verbatim, paired with
// a separate per-token skip blob (postings.AppendMeta) so a reader
// rebuilds each skip table in O(blocks) without faulting payload
// pages. Opening verifies the header, section table, footer (which
// catches truncation in O(1)), and the CRCs of the two sections that
// are materialized (meta, paths); everything else is bounds-checked
// lazily on access and fully checksummed only by Reader.Verify.
package snapfile

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	magic     = "XCSEG001"
	endMagic  = "XCSEGEND"
	headerLen = 24
	// secEntryLen is one section-table entry; footEntryLen one footer
	// checksum entry.
	secEntryLen  = 24
	footEntryLen = 8
	// footTailLen is the fixed footer tail: file length + end magic.
	footTailLen = 16

	// formatVersion is carried in the meta section; readers reject
	// other versions.
	formatVersion = 1

	// flagStoredText marks snapshots built with stored preview text.
	flagStoredText = 1
)

// Section identifiers. The table is ordered but readers look sections
// up by id, so future versions may interleave new ones.
const (
	secMeta        = 1  // uvarint scalars (counts, tokenizer options)
	secPaths       = 2  // label-path table (parent zigzag, label)
	secVocabRec    = 3  // fixed 64-byte per-token records
	secVocabNames  = 4  // token string heap (sorted)
	secPostings    = 5  // concatenated posting block payloads
	secSkips       = 6  // per-token block/skip metadata blobs
	secTypes       = 7  // per-token type-list blobs
	secSubKeys     = 8  // (n+1) u64 offsets + node Dewey-key heap (sorted)
	secSubLens     = 9  // n × u32 subtree token counts
	secPathStats   = 10 // (p+1) u64 entity starts + p × u32 node counts
	secPathEnts    = 11 // entity indices into the subtree table
	secBigramKeys  = 12 // (n+1) u64 offsets + "w1\x00w2" heap (sorted)
	secBigramVals  = 13 // n × u64 adjacency counts
	secStoredKeys  = 14 // (n+1) u64 offsets + Dewey-key heap (doc order)
	secStoredTexts = 15 // (n+1) u64 offsets + text heap
)

// vocabRecLen is the fixed size of one vocabulary record:
//
//	 0: nameOff u64   offset into secVocabNames
//	 8: postOff u64   offset into secPostings
//	16: skipOff u64   offset into secSkips
//	24: typeOff u64   offset into secTypes
//	32: count   u64   collection frequency (int64)
//	40: nameLen u32
//	44: postLen u32
//	48: skipLen u32
//	52: typeLen u32
//	56: df      u32   document frequency (list length)
//	60: reserved u32
const vocabRecLen = 64

var castTable = crc32.IEEETable

func crcOf(b []byte) uint32 { return crc32.Checksum(b, castTable) }

func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func getU32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }
func getU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }

// corruptError tags structural-corruption failures so callers can
// distinguish a damaged snapshot from an I/O error.
type corruptError struct{ msg string }

func (e *corruptError) Error() string { return "snapfile: corrupt snapshot: " + e.msg }

func corruptf(format string, args ...interface{}) error {
	return &corruptError{msg: fmt.Sprintf(format, args...)}
}
