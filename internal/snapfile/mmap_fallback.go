//go:build !linux && !darwin && !freebsd && !netbsd && !openbsd

package snapfile

import "os"

// Portability fallback: platforms without syscall.Mmap read the file
// into a heap buffer. Queries behave identically; only the open cost
// and resident set differ.
type mapping struct {
	data []byte
}

func mapFile(path string) (*mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &mapping{data: data}, nil
}

func (m *mapping) close() { m.data = nil }
