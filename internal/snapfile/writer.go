package snapfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"xclean/internal/invindex"
)

// section is one serialized section held in memory during a write.
type section struct {
	id   uint32
	data []byte
}

// Write serializes the columnar tables of one index segment to w in
// the snapfile format. Sections are assembled in memory first (the
// writer runs where the heap index already exists, so peak memory is
// bounded by the index itself) and streamed out with their checksums.
func Write(w io.Writer, t *invindex.Tables) error {
	secs, flags, err := buildSections(t)
	if err != nil {
		return err
	}
	// Header + section table.
	off := uint64(headerLen + secEntryLen*len(secs))
	table := make([]byte, secEntryLen*len(secs))
	for i, s := range secs {
		e := table[i*secEntryLen:]
		putU32(e[0:], s.id)
		putU32(e[4:], 0)
		putU64(e[8:], off)
		putU64(e[16:], uint64(len(s.data)))
		off += uint64(len(s.data))
	}
	hdr := make([]byte, headerLen)
	copy(hdr, magic)
	putU32(hdr[8:], uint32(len(secs)))
	putU32(hdr[12:], flags)
	putU32(hdr[16:], crcOf(table))
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(hdr); err != nil {
		return fmt.Errorf("snapfile: write: %w", err)
	}
	if _, err := bw.Write(table); err != nil {
		return fmt.Errorf("snapfile: write: %w", err)
	}
	footer := make([]byte, footEntryLen*len(secs)+footTailLen)
	for i, s := range secs {
		if _, err := bw.Write(s.data); err != nil {
			return fmt.Errorf("snapfile: write: %w", err)
		}
		putU32(footer[i*footEntryLen:], s.id)
		putU32(footer[i*footEntryLen+4:], crcOf(s.data))
	}
	putU64(footer[len(footer)-16:], off+uint64(len(footer)))
	copy(footer[len(footer)-8:], endMagic)
	if _, err := bw.Write(footer); err != nil {
		return fmt.Errorf("snapfile: write: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("snapfile: write: %w", err)
	}
	return nil
}

// WriteFile writes the segment to path atomically (temp file + rename
// in the destination directory).
func WriteFile(path string, t *invindex.Tables) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapfile-*")
	if err != nil {
		return fmt.Errorf("snapfile: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, t); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapfile: %w", err)
	}
	// CreateTemp restricts to 0600; snapshots are as shareable as any
	// saved index, so widen to the usual umask-governed mode.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("snapfile: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapfile: %w", err)
	}
	return nil
}

// uvarints is an append-only uvarint buffer.
type uvarints struct{ b []byte }

func (u *uvarints) put(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	u.b = append(u.b, tmp[:n]...)
}

func (u *uvarints) putZig(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	u.b = append(u.b, tmp[:n]...)
}

func buildSections(t *invindex.Tables) ([]section, uint32, error) {
	if len(t.Counts) != len(t.Tokens) || len(t.Lists) != len(t.Tokens) ||
		len(t.TypeLists) != len(t.Tokens) {
		return nil, 0, fmt.Errorf("snapfile: write: inconsistent vocab columns")
	}
	if len(t.SubtreeLens) != len(t.SubtreeKeys) {
		return nil, 0, fmt.Errorf("snapfile: write: inconsistent subtree columns")
	}
	if len(t.BigramVals) != len(t.BigramKeys) {
		return nil, 0, fmt.Errorf("snapfile: write: inconsistent bigram columns")
	}
	if len(t.StoredTexts) != len(t.StoredKeys) {
		return nil, 0, fmt.Errorf("snapfile: write: inconsistent stored-text columns")
	}
	pathCount := len(t.PathLabels)
	if len(t.PathNodes) > pathCount || len(t.PathEnts) > pathCount {
		return nil, 0, fmt.Errorf("snapfile: write: path stats exceed path table")
	}

	var flags uint32
	if t.StoredKeys != nil {
		flags |= flagStoredText
	}

	// meta
	var meta uvarints
	meta.put(formatVersion)
	meta.put(uint64(blockSize()))
	meta.put(uint64(t.NodeCount))
	meta.put(uint64(t.MaxDepth))
	meta.put(uint64(t.TotalTok))
	meta.put(uint64(t.Opts.MinLength))
	tokFlags := uint64(0)
	if t.Opts.KeepNumbers {
		tokFlags |= 1
	}
	if t.Opts.KeepStopwords {
		tokFlags |= 2
	}
	meta.put(tokFlags)
	var vocabTotal int64
	for _, c := range t.Counts {
		vocabTotal += c
	}
	meta.put(uint64(vocabTotal))
	meta.put(uint64(len(t.Tokens)))
	meta.put(uint64(pathCount))
	meta.put(uint64(len(t.SubtreeKeys)))
	meta.put(uint64(len(t.BigramKeys)))
	meta.put(uint64(len(t.StoredKeys)))

	// paths
	var paths uvarints
	for i := range t.PathLabels {
		parent := int64(-1)
		if i < len(t.PathParents) {
			parent = int64(t.PathParents[i])
		}
		paths.putZig(parent)
		paths.put(uint64(len(t.PathLabels[i])))
		paths.b = append(paths.b, t.PathLabels[i]...)
	}

	// vocab records + four heaps they index.
	recs := make([]byte, vocabRecLen*len(t.Tokens))
	var names, post, skips, types []byte
	var tblob uvarints
	for i, tok := range t.Tokens {
		l := t.Lists[i]
		payload := l.Payload()
		smeta := l.AppendMeta(nil)
		tblob.b = tblob.b[:0]
		tblob.put(uint64(len(t.TypeLists[i])))
		prev := int64(-1)
		for _, tc := range t.TypeLists[i] {
			if int64(tc.Path) <= prev {
				return nil, 0, fmt.Errorf("snapfile: write: token %q type list not strictly sorted", tok)
			}
			tblob.put(uint64(int64(tc.Path) - prev))
			tblob.put(uint64(tc.F))
			prev = int64(tc.Path)
		}
		r := recs[i*vocabRecLen:]
		putU64(r[0:], uint64(len(names)))
		putU64(r[8:], uint64(len(post)))
		putU64(r[16:], uint64(len(skips)))
		putU64(r[24:], uint64(len(types)))
		putU64(r[32:], uint64(t.Counts[i]))
		if len(tok) > math.MaxUint32 || len(payload) > math.MaxUint32 ||
			len(smeta) > math.MaxUint32 || len(tblob.b) > math.MaxUint32 {
			return nil, 0, fmt.Errorf("snapfile: write: token %q column exceeds 4 GiB", tok)
		}
		putU32(r[40:], uint32(len(tok)))
		putU32(r[44:], uint32(len(payload)))
		putU32(r[48:], uint32(len(smeta)))
		putU32(r[52:], uint32(len(tblob.b)))
		putU32(r[56:], uint32(l.Len()))
		names = append(names, tok...)
		post = append(post, payload...)
		skips = append(skips, smeta...)
		types = append(types, tblob.b...)
	}

	// subtree table
	subKeys := heapWithOffsets(t.SubtreeKeys)
	subLens := make([]byte, 4*len(t.SubtreeLens))
	for i, l := range t.SubtreeLens {
		putU32(subLens[4*i:], uint32(l))
	}

	// per-path stats + entity indices
	stats := make([]byte, 8*(pathCount+1)+4*pathCount)
	var ents []byte
	total := 0
	for p := 0; p < pathCount; p++ {
		putU64(stats[8*p:], uint64(total))
		if p < len(t.PathEnts) {
			for _, idx := range t.PathEnts[p] {
				if idx < 0 || int(idx) >= len(t.SubtreeKeys) {
					return nil, 0, fmt.Errorf("snapfile: write: entity index %d out of range", idx)
				}
				var e [4]byte
				putU32(e[:], uint32(idx))
				ents = append(ents, e[:]...)
				total++
			}
		}
		var n int32
		if p < len(t.PathNodes) {
			n = t.PathNodes[p]
		}
		putU32(stats[8*(pathCount+1)+4*p:], uint32(n))
	}
	putU64(stats[8*pathCount:], uint64(total))

	// bigrams
	biKeys := heapWithOffsets(t.BigramKeys)
	biVals := make([]byte, 8*len(t.BigramVals))
	for i, v := range t.BigramVals {
		putU64(biVals[8*i:], uint64(v))
	}

	secs := []section{
		{secMeta, meta.b},
		{secPaths, paths.b},
		{secVocabRec, recs},
		{secVocabNames, names},
		{secPostings, post},
		{secSkips, skips},
		{secTypes, types},
		{secSubKeys, subKeys},
		{secSubLens, subLens},
		{secPathStats, stats},
		{secPathEnts, ents},
		{secBigramKeys, biKeys},
		{secBigramVals, biVals},
	}
	if t.StoredKeys != nil {
		secs = append(secs,
			section{secStoredKeys, heapWithOffsets(t.StoredKeys)},
			section{secStoredTexts, heapWithOffsets(t.StoredTexts)},
		)
	}
	return secs, flags, nil
}

// heapWithOffsets lays out (n+1) u64 offsets followed by the
// concatenated strings; offsets are relative to the heap start, so
// entry i is heap[off[i]:off[i+1]].
func heapWithOffsets(ss []string) []byte {
	out := make([]byte, 8*(len(ss)+1))
	var heapLen uint64
	for i, s := range ss {
		putU64(out[8*i:], heapLen)
		heapLen += uint64(len(s))
	}
	putU64(out[8*len(ss):], heapLen)
	for _, s := range ss {
		out = append(out, s...)
	}
	return out
}
