package snapfile

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"xclean/internal/invindex"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

const sampleXML = `<dblp>
  <article><author>jonathan rose</author><title>fpga architecture synthesis</title><year>2001</year></article>
  <article><author>mary smith</author><title>database indexing structures</title><year>2005</year></article>
  <article><author>alan jones</author><title>keyword search over databases</title><year>2007</year></article>
  <article><author>mary smith</author><title>spelling correction for queries</title></article>
</dblp>`

func buildSample(t *testing.T) *invindex.Index {
	t.Helper()
	tree, err := xmltree.Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	ix := invindex.BuildStored(tree, tokenizer.Options{})
	ix.Compact()
	return ix
}

func writeSample(t *testing.T, ix *invindex.Index) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sample.seg")
	tab := ix.ExportTables()
	if err := WriteFile(path, &tab); err != nil {
		t.Fatal(err)
	}
	return path
}

// compareSource checks every invindex.Source accessor of got against
// the reference heap index.
func compareSource(t *testing.T, ix *invindex.Index, got invindex.Source) {
	t.Helper()
	if got.NodeCount() != ix.NodeCount() || got.MaxDepth() != ix.MaxDepth() ||
		got.TotalTokens() != ix.TotalTokens() {
		t.Errorf("scalars diverge: %d/%d/%d vs %d/%d/%d",
			got.NodeCount(), got.MaxDepth(), got.TotalTokens(),
			ix.NodeCount(), ix.MaxDepth(), ix.TotalTokens())
	}
	if got.TokenizerOptions() != ix.TokenizerOptions() {
		t.Errorf("tokenizer options diverge")
	}
	if !reflect.DeepEqual(got.VocabList(), ix.VocabList()) {
		t.Fatalf("vocab list diverges")
	}
	gv, wv := got.Vocabulary(), ix.Vocabulary()
	if gv.Total() != wv.Total() || gv.Size() != wv.Size() {
		t.Errorf("vocab totals diverge")
	}
	for _, tok := range append(ix.VocabList(), "nosuchtoken") {
		if gv.Contains(tok) != wv.Contains(tok) || gv.Count(tok) != wv.Count(tok) {
			t.Errorf("vocab entry %q diverges", tok)
		}
		if gv.Prob(tok) != wv.Prob(tok) {
			t.Errorf("Prob(%q): %v vs %v (must be bit-identical)", tok, gv.Prob(tok), wv.Prob(tok))
		}
		if got.DocFreq(tok) != ix.DocFreq(tok) {
			t.Errorf("DocFreq(%q) diverges", tok)
		}
		if !reflect.DeepEqual(got.TypeList(tok), ix.TypeList(tok)) {
			t.Errorf("TypeList(%q): %v vs %v", tok, got.TypeList(tok), ix.TypeList(tok))
		}
		gm := got.MergedListFor([]string{tok})
		wm := ix.MergedListFor([]string{tok})
		for {
			ge, gok := gm.Next()
			we, wok := wm.Next()
			if gok != wok {
				t.Fatalf("merged list of %q: lengths diverge", tok)
			}
			if !gok {
				break
			}
			if !reflect.DeepEqual(ge, we) {
				t.Fatalf("merged list of %q: %+v vs %+v", tok, ge, we)
			}
		}
	}
	gp, wp := got.PathTable(), ix.PathTable()
	if gp.Len() != wp.Len() {
		t.Fatalf("path tables diverge: %d vs %d paths", gp.Len(), wp.Len())
	}
	for p := xmltree.PathID(0); int(p) < wp.Len(); p++ {
		if gp.String(p) != wp.String(p) || got.PathDepth(p) != ix.PathDepth(p) {
			t.Errorf("path %d diverges", p)
		}
		if got.NodesWithPath(p) != ix.NodesWithPath(p) {
			t.Errorf("NodesWithPath(%d) diverges", p)
		}
		if !reflect.DeepEqual(got.SubtreeLensByPath(p), ix.SubtreeLensByPath(p)) {
			t.Errorf("SubtreeLensByPath(%d) diverges", p)
		}
		if !reflect.DeepEqual(got.RootsByPath(p), ix.RootsByPath(p)) {
			t.Errorf("RootsByPath(%d) diverges", p)
		}
		for _, key := range ix.RootsByPath(p) {
			if got.SubtreeLenKey(key) != ix.SubtreeLenKey(key) {
				t.Errorf("SubtreeLenKey(%q) diverges", key)
			}
		}
	}
	for _, pair := range [][2]string{{"jonathan", "rose"}, {"database", "indexing"}, {"rose", "jonathan"}, {"no", "pair"}} {
		if got.BigramCount(pair[0], pair[1]) != ix.BigramCount(pair[0], pair[1]) {
			t.Errorf("BigramCount(%v) diverges", pair)
		}
	}
	if got.HasStoredText() != ix.HasStoredText() {
		t.Fatalf("stored-text flag diverges")
	}
	for _, code := range []string{"1", "1.2", "1.2.2", "1.9"} {
		d, _ := xmltree.ParseDewey(code)
		if g, w := got.SubtreeText(d, 25), ix.SubtreeText(d, 25); g != w {
			t.Errorf("SubtreeText(%s): %q vs %q", code, g, w)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	ix := buildSample(t)
	path := writeSample(t, ix)
	for _, noMmap := range []bool{false, true} {
		r, err := Open(path, OpenOptions{NoMmap: noMmap})
		if err != nil {
			t.Fatalf("open (noMmap=%v): %v", noMmap, err)
		}
		if r.Mmapped() == noMmap {
			t.Errorf("Mmapped()=%v under noMmap=%v", r.Mmapped(), noMmap)
		}
		compareSource(t, ix, r)
		if err := r.Verify(); err != nil {
			t.Errorf("verify: %v", err)
		}
		mat, err := r.Materialize()
		if err != nil {
			t.Fatalf("materialize: %v", err)
		}
		compareSource(t, ix, mat)
		if !mat.Compacted() {
			t.Error("materialized index should be compacted")
		}
		r.Close()
	}
}

// TestRoundTripUncompacted covers the raw-postings export path and an
// index without stored text.
func TestRoundTripUncompacted(t *testing.T) {
	tree, err := xmltree.Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	ix := invindex.Build(tree, tokenizer.Options{MinLength: 2})
	path := filepath.Join(t.TempDir(), "raw.seg")
	tab := ix.ExportTables()
	if err := WriteFile(path, &tab); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.HasStoredText() {
		t.Error("stored-text flag set without stored text")
	}
	compareSource(t, ix, r)
}

// TestOpenRejectsCorruption flips or truncates bytes across the whole
// file and requires every damaged variant to fail at Open or at
// Verify — never to panic.
func TestOpenRejectsCorruption(t *testing.T) {
	ix := buildSample(t)
	path := writeSample(t, ix)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, data []byte) {
		t.Helper()
		p := filepath.Join(t.TempDir(), "bad.seg")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(p, OpenOptions{})
		if err != nil {
			return // rejected at open: good
		}
		defer r.Close()
		if err := r.Verify(); err == nil {
			t.Errorf("%s: corruption passed Open and Verify", name)
		}
	}

	for _, n := range []int{0, 7, headerLen - 1, len(orig) / 2, len(orig) - 1} {
		check("truncated", orig[:n])
	}
	step := len(orig)/64 + 1
	for off := 0; off < len(orig); off += step {
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0x41
		check("byte flipped", mut)
	}
}

// TestProbDenominator pins the epsilon behaviour replicated from
// tokenizer.Vocabulary.
func TestProbDenominator(t *testing.T) {
	ix := buildSample(t)
	r, err := Open(writeSample(t, ix), OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	v := r.Vocabulary()
	want := 1 / (float64(v.Total()) + float64(v.Size()))
	if got := v.Prob("nosuchtoken"); math.Abs(got-want) != 0 {
		t.Errorf("unknown-term epsilon %v want %v", got, want)
	}
}
