//go:build linux || darwin || freebsd || netbsd || openbsd

package snapfile

import (
	"fmt"
	"os"
	"syscall"
)

// mapping is a read-only memory mapping of a snapshot file. The kernel
// pages bytes in on demand and may drop clean pages under pressure, so
// a mapped corpus can be far larger than RAM.
type mapping struct {
	data []byte
}

func mapFile(path string) (*mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		// mmap of length 0 is an error on most platforms; an empty file
		// can never be a valid snapshot, so let parse report it.
		return &mapping{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("file too large to map: %d bytes", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmap %s: %w", path, err)
	}
	return &mapping{data: data}, nil
}

func (m *mapping) close() {
	if m.data != nil {
		_ = syscall.Munmap(m.data)
		m.data = nil
	}
}
