package snapfile

import (
	"os"
	"path/filepath"
	"testing"
)

// Build a structurally valid file (header, table CRC, footer, section
// CRCs all correct) whose meta section ends mid-scalar.
func TestReviewTruncatedMeta(t *testing.T) {
	meta := []byte{1}                                // version=1
	meta = append(meta, uvb(uint64(blockSize()))...) // block size
	meta = append(meta, 5)                           // nodeCount=5; then truncated
	paths := []byte{}
	secs := []section{{secMeta, meta}, {secPaths, paths}}
	off := uint64(headerLen + secEntryLen*len(secs))
	table := make([]byte, secEntryLen*len(secs))
	for i, s := range secs {
		e := table[i*secEntryLen:]
		putU32(e[0:], s.id)
		putU64(e[8:], off)
		putU64(e[16:], uint64(len(s.data)))
		off += uint64(len(s.data))
	}
	hdr := make([]byte, headerLen)
	copy(hdr, magic)
	putU32(hdr[8:], uint32(len(secs)))
	putU32(hdr[16:], crcOf(table))
	var buf []byte
	buf = append(buf, hdr...)
	buf = append(buf, table...)
	for _, s := range secs {
		buf = append(buf, s.data...)
	}
	foot := make([]byte, footEntryLen*len(secs)+footTailLen)
	for i, s := range secs {
		putU32(foot[i*footEntryLen:], s.id)
		putU32(foot[i*footEntryLen+4:], crcOf(s.data))
	}
	putU64(foot[len(foot)-16:], uint64(len(buf)+len(foot)))
	copy(foot[len(foot)-8:], endMagic)
	buf = append(buf, foot...)
	p := filepath.Join(t.TempDir(), "trunc.seg")
	if err := os.WriteFile(p, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(p, OpenOptions{NoMmap: true})
	if err == nil {
		r.Close()
		t.Fatal("expected error")
	}
	t.Logf("got error (no panic): %v", err)
}

func uvb(v uint64) []byte {
	var b []byte
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}
