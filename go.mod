module xclean

go 1.22
