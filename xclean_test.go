package xclean

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"xclean/internal/dataset"
)

const sampleXML = `<dblp>
  <article><author>jonathan rose</author><title>fpga architecture synthesis</title><year>2001</year></article>
  <article><author>jonathan rose</author><title>reconfigurable fpga routing</title><year>2003</year></article>
  <article><author>mary smith</author><title>database indexing structures</title><year>2005</year></article>
  <article><author>alan jones</author><title>keyword search over databases</title><year>2007</year></article>
</dblp>`

func openSample(t *testing.T, opts Options) *Engine {
	t.Helper()
	e, err := Open(strings.NewReader(sampleXML), opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestOpenAndSuggest(t *testing.T) {
	e := openSample(t, Options{})
	sugs := e.Suggest("rose architecure fpga")
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	if sugs[0].Query != "rose architecture fpga" {
		t.Errorf("top=%q", sugs[0].Query)
	}
	if sugs[0].Entities < 1 {
		t.Error("non-empty result guarantee violated")
	}
	if sugs[0].ResultType != "/dblp/article" {
		t.Errorf("result type=%q want /dblp/article", sugs[0].ResultType)
	}
	if sugs[0].EditDistance != 1 {
		t.Errorf("edit distance=%d want 1", sugs[0].EditDistance)
	}
	if len(sugs[0].Words) != 3 {
		t.Errorf("words=%v", sugs[0].Words)
	}
}

func TestOpenParseError(t *testing.T) {
	if _, err := Open(strings.NewReader("<broken>"), Options{}); err == nil {
		t.Error("want parse error")
	}
	if _, err := OpenFile("/nonexistent/file.xml", Options{}); err == nil {
		t.Error("want file error")
	}
}

func TestOpenCollection(t *testing.T) {
	e, err := OpenCollection("root", Options{},
		strings.NewReader(`<doc><t>barrier reef diving</t></doc>`),
		strings.NewReader(`<doc><t>coral reef biology</t></doc>`),
	)
	if err != nil {
		t.Fatal(err)
	}
	sugs := e.Suggest("coral reff")
	if len(sugs) == 0 || sugs[0].Query != "coral reef" {
		t.Errorf("sugs=%v", sugs)
	}
}

func TestSLCASemantics(t *testing.T) {
	e := openSample(t, Options{Semantics: SemanticsSLCA})
	sugs := e.Suggest("rose architecure")
	if len(sugs) == 0 || sugs[0].Query != "rose architecture" {
		t.Fatalf("sugs=%v", sugs)
	}
	if sugs[0].ResultType != "" {
		t.Errorf("SLCA result type should be empty, got %q", sugs[0].ResultType)
	}
	// SuggestWithSpaces falls back to plain SLCA suggest.
	if got := e.SuggestWithSpaces("rose architecure"); len(got) == 0 {
		t.Error("SLCA SuggestWithSpaces failed")
	}
}

func TestSuggestWithSpaces(t *testing.T) {
	e := openSample(t, Options{})
	sugs := e.SuggestWithSpaces("data base indexing")
	if len(sugs) == 0 || sugs[0].Query != "database indexing" {
		t.Errorf("sugs=%v", sugs)
	}
}

func TestStats(t *testing.T) {
	e := openSample(t, Options{})
	st := e.Stats()
	// 1 root + 4 articles × 4 nodes (article, author, title, year).
	if st.Nodes != 17 {
		t.Errorf("nodes=%d want 17", st.Nodes)
	}
	if st.MaxDepth != 3 || st.LabelPaths != 5 {
		t.Errorf("stats=%+v", st)
	}
	if st.DistinctTerms == 0 || st.Tokens == 0 {
		t.Errorf("empty vocab: %+v", st)
	}
}

func TestTopKOption(t *testing.T) {
	e := openSample(t, Options{TopK: 1, MaxErrors: 2})
	if got := e.Suggest("fpga routng"); len(got) > 1 {
		t.Errorf("TopK=1 violated: %v", got)
	}
}

func TestFromTreeWithGeneratedCorpus(t *testing.T) {
	c := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 1, Articles: 300})
	e := FromTree(c.Tree, Options{})
	qs := c.SampleQueries(2, 5)
	for _, q := range qs {
		sugs := e.Suggest(q)
		if len(sugs) == 0 {
			t.Errorf("clean query %q got no suggestions", q)
			continue
		}
		if sugs[0].Query != q {
			t.Logf("clean query %q ranked below %q (acceptable but rare)", q, sugs[0].Query)
		}
	}
}

func TestNoSuggestionForHopelessQuery(t *testing.T) {
	e := openSample(t, Options{})
	if got := e.Suggest("zzzzz xxxxx"); got != nil {
		t.Errorf("got %v", got)
	}
	if got := e.Suggest(""); got != nil {
		t.Errorf("got %v", got)
	}
}

func TestPhoneticOption(t *testing.T) {
	e := openSample(t, Options{PhoneticMatching: true})
	// "reise" is 2 edits from "rose" (beyond the default ε=1) but
	// Soundex-equal (R200), so only the phonetic engine resolves it.
	sugs := e.Suggest("reise fpga")
	if len(sugs) == 0 || sugs[0].Query != "rose fpga" {
		t.Errorf("phonetic sugs=%v", sugs)
	}
	plain := openSample(t, Options{})
	if got := plain.Suggest("reise fpga"); got != nil {
		t.Errorf("plain engine matched: %v", got)
	}
}

func TestSynonymOption(t *testing.T) {
	e := openSample(t, Options{
		Synonyms: map[string][]string{"hardware": {"fpga"}},
	})
	sugs := e.Suggest("rose hardware")
	if len(sugs) == 0 || sugs[0].Query != "rose fpga" {
		t.Errorf("synonym sugs=%v", sugs)
	}
}

func TestSaveAndOpenIndex(t *testing.T) {
	orig := openSample(t, Options{})
	var buf bytes.Buffer
	if err := orig.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenIndex(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := "rose architecure fpga"
	a, b := orig.Suggest(q), loaded.Suggest(q)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("reloaded engine differs:\n%v\n%v", a, b)
	}
	if _, err := OpenIndex(strings.NewReader("junk"), Options{}); err == nil {
		t.Error("junk index accepted")
	}
	if _, err := OpenIndexFile("/nonexistent.idx", Options{}); err == nil {
		t.Error("missing file accepted")
	}
}
