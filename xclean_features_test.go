package xclean

import (
	"reflect"
	"strings"
	"testing"
)

func TestELCASemantics(t *testing.T) {
	e := openSample(t, Options{Semantics: SemanticsELCA})
	sugs := e.Suggest("rose architecure")
	if len(sugs) == 0 || sugs[0].Query != "rose architecture" {
		t.Fatalf("sugs=%v", sugs)
	}
	if sugs[0].ResultType != "" {
		t.Errorf("ELCA result type should be empty, got %q", sugs[0].ResultType)
	}
	if sugs[0].Entities < 1 {
		t.Error("non-empty guarantee violated")
	}
}

// TestELCAAtLeastSLCAEntities: ELCA entities are a superset of SLCA
// entities for every suggestion on the shared corpus.
func TestELCAAtLeastSLCAEntities(t *testing.T) {
	slca := openSample(t, Options{Semantics: SemanticsSLCA})
	elca := openSample(t, Options{Semantics: SemanticsELCA})
	for _, q := range []string{"rose fpga", "databse indexing", "keyword serch"} {
		s := slca.Suggest(q)
		e := elca.Suggest(q)
		if len(s) == 0 || len(e) == 0 {
			continue
		}
		if e[0].Entities < s[0].Entities {
			t.Errorf("query %q: elca entities %d < slca %d", q, e[0].Entities, s[0].Entities)
		}
	}
}

func TestCompactPostingsEquivalence(t *testing.T) {
	plain := openSample(t, Options{MaxErrors: 2})
	compact := openSample(t, Options{MaxErrors: 2, CompactPostings: true})
	for _, q := range []string{"rose architecure fpga", "databse indexing", "", "zzzz"} {
		a := plain.Suggest(q)
		b := compact.Suggest(q)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("query %q: compact differs\nplain:   %v\ncompact: %v", q, a, b)
		}
	}
}

func TestBigramCoherenceOption(t *testing.T) {
	e := openSample(t, Options{BigramCoherence: true, BigramLambda: 0.8})
	sugs := e.Suggest("rose architecure fpga")
	if len(sugs) == 0 || sugs[0].Query != "rose architecture fpga" {
		t.Fatalf("sugs=%v", sugs)
	}
}

func TestEntityPriorOptions(t *testing.T) {
	for _, p := range []Prior{PriorUniform, PriorLength} {
		e := openSample(t, Options{EntityPrior: p})
		sugs := e.Suggest("rose architecure fpga")
		if len(sugs) == 0 || sugs[0].Query != "rose architecture fpga" {
			t.Errorf("prior %d: sugs=%v", p, sugs)
		}
	}
}

func TestEntityWeightsCustomPrior(t *testing.T) {
	// Weight the second article ("reconfigurable fpga routing",
	// Dewey 1.2) very highly; a query torn between "routing" and
	// "rose" contexts must follow the boost without losing validity.
	e := openSample(t, Options{
		EntityPrior: PriorCustom,
		EntityWeights: map[string]float64{
			"1.2":          1000,
			"not a dewey!": 5, // malformed: must be ignored, not crash
		},
	})
	sugs := e.Suggest("fpga routng")
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	if sugs[0].Query != "fpga routing" {
		t.Errorf("top=%q", sugs[0].Query)
	}
	if sugs[0].Entities < 1 {
		t.Error("non-empty guarantee violated")
	}
}

func TestCompactPostingsSaveIndex(t *testing.T) {
	compact := openSample(t, Options{CompactPostings: true})
	var sb strings.Builder
	if err := compact.SaveIndex(&nopWriter{&sb}); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenIndex(strings.NewReader(sb.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := "rose architecure fpga"
	if !reflect.DeepEqual(compact.Suggest(q), loaded.Suggest(q)) {
		t.Error("reloaded compacted index differs")
	}
}

// nopWriter adapts a strings.Builder to io.Writer (Builder already is
// one; the wrapper exists to keep the byte-for-byte copy explicit).
type nopWriter struct{ b *strings.Builder }

func (w *nopWriter) Write(p []byte) (int, error) { return w.b.Write(p) }

func TestOptionsZeroValueDefaults(t *testing.T) {
	// The zero Options must reproduce the paper's defaults and work
	// end to end — this is the quickstart path.
	e := openSample(t, Options{})
	if got := e.Suggest("rose architecure fpga"); len(got) == 0 {
		t.Fatal("zero options broke the quickstart path")
	}
}

func TestUnicodeQueries(t *testing.T) {
	doc := `<bib><paper><author>hinrich schütze</author><title>geo-tagging survey</title></paper></bib>`
	e, err := Open(strings.NewReader(doc), Options{MaxErrors: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The introduction's motivating example: ü typed as u. Punctuation
	// splits tokens (Section III), so the suggestion renders
	// space-separated.
	sugs := e.Suggest("schutze geo-taging")
	if len(sugs) == 0 {
		t.Fatal("no suggestions for the paper's own example")
	}
	if sugs[0].Query != "schütze geo tagging" {
		t.Errorf("top=%q want %q", sugs[0].Query, "schütze geo tagging")
	}
}

func TestOpenStreamingEquivalence(t *testing.T) {
	tree, err := Open(strings.NewReader(sampleXML), Options{MaxErrors: 2, StoreText: true})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := OpenStreaming(strings.NewReader(sampleXML), Options{MaxErrors: 2, StoreText: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"rose architecure fpga", "databse indexing", "keyward search"} {
		a := tree.Suggest(q)
		b := stream.Suggest(q)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("query %q: streaming engine diverges\ntree:   %v\nstream: %v", q, a, b)
		}
		if len(a) > 0 {
			if pa, pb := tree.Preview(a[0], 100), stream.Preview(b[0], 100); pa != pb {
				t.Errorf("query %q: previews diverge: %q vs %q", q, pa, pb)
			}
		}
	}
	if _, err := OpenStreaming(strings.NewReader("<broken>"), Options{}); err == nil {
		t.Error("malformed stream accepted")
	}
}

func TestStopwordOnlyQuery(t *testing.T) {
	e := openSample(t, Options{})
	// Pure stop words tokenize to nothing; must not panic or suggest.
	if got := e.Suggest("the of and"); got != nil {
		t.Errorf("stopword query suggested %v", got)
	}
}
