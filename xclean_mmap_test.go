package xclean

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"xclean/internal/snapfile"
)

// The snapshot-reader differential harness: every configuration of the
// segmented parity matrix is replayed heap-engine vs snapfile.Reader —
// same corpus, same queries, scores within 1e-12 (assertParity's
// tolerance) — across both the mmap and the NoMmap fallback paths.

// snapReopen persists the engine as a single-segment snapshot and
// reopens it through the sniffing open path.
func snapReopen(t *testing.T, e *Engine, opts Options) *Engine {
	t.Helper()
	path := filepath.Join(t.TempDir(), "corpus.seg")
	if err := e.SaveSnapshot(path); err != nil {
		t.Fatalf("save snapshot: %v", err)
	}
	re, err := OpenIndexFile(path, opts)
	if err != nil {
		t.Fatalf("reopen snapshot: %v", err)
	}
	return re
}

func testSnapshotReaderParity(t *testing.T, opts Options) {
	t.Helper()
	ref, err := Open(strings.NewReader(collectionXML(segDocs)), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, noMmap := range []bool{false, true} {
		ropts := opts
		ropts.NoMmap = noMmap
		snap := snapReopen(t, ref, ropts)
		if !snap.SnapshotBacked() {
			t.Fatal("engine is not snapshot-backed")
		}
		if !reflect.DeepEqual(snap.Stats(), ref.Stats()) {
			t.Errorf("stats diverge: %+v vs %+v", snap.Stats(), ref.Stats())
		}
		for _, q := range segQueries {
			assertParity(t, "snap", q, snap.Suggest(q), ref.Suggest(q))
			assertParity(t, "snap-spaces", q, snap.SuggestWithSpaces(q), ref.SuggestWithSpaces(q))
		}
		if err := snap.VerifySnapshot(); err != nil {
			t.Errorf("verify: %v", err)
		}
	}
}

func TestSnapshotReaderParity(t *testing.T) {
	testSnapshotReaderParity(t, Options{StoreText: true, Workers: 1})
}

func TestSnapshotReaderParityParallelScan(t *testing.T) {
	testSnapshotReaderParity(t, Options{StoreText: true})
}

func TestSnapshotReaderParityBigramLengthPrior(t *testing.T) {
	testSnapshotReaderParity(t, Options{
		StoreText:       true,
		Workers:         1,
		BigramCoherence: true,
		EntityPrior:     PriorLength,
	})
}

func TestSnapshotReaderParityCompactPostings(t *testing.T) {
	testSnapshotReaderParity(t, Options{StoreText: true, Workers: 1, CompactPostings: true})
}

func TestSnapshotReaderParityPhoneticSynonyms(t *testing.T) {
	testSnapshotReaderParity(t, Options{
		StoreText:        true,
		Workers:          1,
		PhoneticMatching: true,
		Synonyms:         map[string][]string{"database": {"databases"}},
	})
}

// TestSnapshotReaderParitySLCA: snapshot-backed SLCA/ELCA engines
// materialize at open and must still agree with the live engine.
func TestSnapshotReaderParitySLCA(t *testing.T) {
	for _, sem := range []Semantics{SemanticsSLCA, SemanticsELCA} {
		opts := Options{StoreText: true, Semantics: sem}
		ref, err := Open(strings.NewReader(collectionXML(segDocs)), opts)
		if err != nil {
			t.Fatal(err)
		}
		snap := snapReopen(t, ref, opts)
		for _, q := range segQueries[:4] {
			assertParity(t, "slca-snap", q, snap.Suggest(q), ref.Suggest(q))
		}
	}
}

// TestSnapshotPostCompactionStack drives the PR 8 add/remove workload
// through a segment stack, drains the compactor, snapshots the sealed
// stack as a manifest, and requires the reopened engine to match the
// live one. This covers the multi-segment manifest path end to end.
func TestSnapshotPostCompactionStack(t *testing.T) {
	opts := Options{StoreText: true, Workers: 1, TailLimit: 3}
	removeOrds := []int{2, 7, 11, 14}
	seg := buildSegmented(t, opts, 5, removeOrds)
	defer seg.Close()
	for {
		did, err := seg.CompactNow(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !did {
			break
		}
	}

	dir := t.TempDir()
	manifest := filepath.Join(dir, "stack.xcm")
	if err := seg.SaveSnapshot(manifest); err != nil {
		t.Fatalf("save stack snapshot: %v", err)
	}
	m, err := snapfile.ReadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) < 1 {
		t.Fatalf("manifest lists no segments")
	}
	snap, err := OpenIndexFile(manifest, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range segQueries {
		assertParity(t, "stack-snap", q, snap.Suggest(q), seg.Suggest(q))
	}

	// The flattened single-segment form serves pure-mmap.
	if err := seg.FlushSegments(context.Background()); err != nil {
		t.Fatal(err)
	}
	flat := filepath.Join(dir, "flat.xcm")
	if err := seg.SaveSnapshot(flat); err != nil {
		t.Fatal(err)
	}
	fm, err := snapfile.ReadManifest(flat)
	if err != nil {
		t.Fatal(err)
	}
	if len(fm.Segments) != 1 {
		t.Fatalf("flattened stack wrote %d segments, want 1", len(fm.Segments))
	}
	fsnap, err := OpenIndexFile(flat, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !fsnap.SnapshotBacked() {
		t.Error("one-segment manifest should serve snapshot-backed")
	}
	for _, q := range segQueries {
		assertParity(t, "flat-snap", q, fsnap.Suggest(q), seg.Suggest(q))
	}
}

// TestSnapshotWriteMaterializes: the first live write on a
// snapshot-backed engine materializes the corpus and keeps serving,
// with parity against a cold rebuild of the enlarged corpus.
func TestSnapshotWriteMaterializes(t *testing.T) {
	opts := Options{StoreText: true, Workers: 1}
	base, err := Open(strings.NewReader(collectionXML(segDocs[:8])), opts)
	if err != nil {
		t.Fatal(err)
	}
	snap := snapReopen(t, base, opts)
	for _, d := range segDocs[8:] {
		if err := snap.AddDocument(strings.NewReader(d)); err != nil {
			t.Fatalf("add on snapshot-backed engine: %v", err)
		}
	}
	if snap.SnapshotBacked() {
		t.Error("engine still reports snapshot-backed after writes")
	}
	ref, err := Open(strings.NewReader(collectionXML(segDocs)), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range segQueries {
		assertParity(t, "post-write", q, snap.Suggest(q), ref.Suggest(q))
	}
}

// TestSnapshotOpenRejectsCorruption: a truncated or bit-flipped
// snapshot must fail loudly at open (or verify), never panic, and
// never silently serve.
func TestSnapshotOpenRejectsCorruption(t *testing.T) {
	ref := openSample(t, Options{StoreText: true})
	dir := t.TempDir()
	path := filepath.Join(dir, "c.seg")
	if err := ref.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.seg")
	if err := os.WriteFile(bad, data[:len(data)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenIndexFile(bad, Options{}); err == nil {
		t.Error("truncated snapshot opened without error")
	}
	flip := append([]byte(nil), data...)
	flip[len(flip)/3] ^= 0x20
	if err := os.WriteFile(bad, flip, 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := OpenIndexFile(bad, Options{})
	if err == nil {
		if verr := e.VerifySnapshot(); verr == nil {
			t.Error("bit flip passed open and verify")
		}
	}
}

// TestSnapshotConcurrentOpenEvictQuery models the catalog's lifecycle
// under -race: readers query through an atomically-swapped engine
// while an "evictor" keeps reopening the snapshot and dropping the old
// engine (eviction is just dropping the reference; the finalizer
// unmaps once in-flight queries drain).
func TestSnapshotConcurrentOpenEvictQuery(t *testing.T) {
	opts := Options{StoreText: true}
	ref, err := Open(strings.NewReader(collectionXML(segDocs)), opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.seg")
	if err := ref.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	open := func() *Engine {
		e, err := OpenSnapshot(path, opts)
		if err != nil {
			t.Error(err)
			return nil
		}
		return e
	}
	var cur atomic.Pointer[Engine]
	cur.Store(open())

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				e := cur.Load()
				if e == nil {
					return
				}
				q := segQueries[(i+r)%len(segQueries)]
				for _, s := range e.Suggest(q) {
					if s.Entities < 1 {
						t.Errorf("non-empty guarantee violated for %q", q)
						return
					}
				}
			}
		}(r)
	}
	for cycle := 0; cycle < 8; cycle++ {
		next := open()
		if next == nil {
			break
		}
		cur.Store(next) // the previous engine is now eviction garbage
		runtime.GC()    // provoke the finalizer while queries are in flight
	}
	close(stop)
	wg.Wait()
	q := segQueries[0]
	assertParity(t, "post-evict", q, cur.Load().Suggest(q), ref.Suggest(q))
}
