#!/bin/sh
# ingest_smoke.sh — end-to-end live-ingest smoke test.
#
# Boots one xserve over a generated corpus with a small segment tail
# limit, then streams document additions and removals through the
# /corpora admin actions while a background query loop hammers
# /suggest. Asserts: zero query errors during ingest, added content
# searchable and removed content gone (no stale cache answers), at
# least one background compaction completed, and a final flush
# flattens the stack back to one segment.
#
# Run via `make ingest-smoke`. Requires only the go toolchain and curl.
set -eu

PORT=18095

tmp=$(mktemp -d)
pids=""
cleanup() {
	for pid in $pids; do
		kill "$pid" 2>/dev/null || true
	done
	wait 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

say() { echo "ingest-smoke: $*"; }

wait_http() {
	i=0
	while ! curl -fsS -o /dev/null --max-time 1 "$1" 2>/dev/null; do
		i=$((i + 1))
		if [ "$i" -ge 50 ]; then
			say "timeout waiting for $1"
			exit 1
		fi
		sleep 0.2
	done
}

say "building binaries"
go build -o "$tmp/xgen" ./cmd/xgen
go build -o "$tmp/xserve" ./cmd/xserve

say "generating base corpus"
"$tmp/xgen" -out "$tmp/corpus.xml" -kind dblp -articles 300 -queries 1
q=$(head -1 "$tmp/corpus.xml.queries.tsv" | cut -f2)
base="http://127.0.0.1:$PORT"

say "starting server (tail-limit 4)"
"$tmp/xserve" -doc "$tmp/corpus.xml" -store-text -tail-limit 4 \
	-addr "127.0.0.1:$PORT" -q &
pids="$pids $!"
wait_http "$base/healthz"

say "starting background query loop: $q"
qurl="$base/suggest?q=$(printf %s "$q" | sed 's/ /+/g')&corpus=corpus"
: >"$tmp/qfail"
(
	while [ ! -f "$tmp/qstop" ]; do
		curl -fsS --max-time 5 "$qurl" >/dev/null 2>&1 || echo fail >>"$tmp/qfail"
	done
) &
pids="$pids $!"

say "streaming 24 additions with interleaved removals"
i=1
while [ "$i" -le 24 ]; do
	doc="<article><author>ingest author$i</author><title>ingestsmoketoken$i streaming segment workload</title></article>"
	curl -fsS -X POST --data "$doc" \
		"$base/corpora?name=corpus&action=adddoc" >/dev/null
	# Remove every fourth added document by the witness ordinal of its
	# unique token — exercising both tail drops and sealed tombstones.
	if [ $((i % 4)) -eq 0 ]; then
		resp=$(curl -fsS "$base/suggest?q=ingestsmoketoken$i&corpus=corpus")
		ord=$(printf %s "$resp" | grep -o '"witness":"1\.[0-9]*"' | head -1 | grep -o '1\.[0-9]*')
		if [ -z "$ord" ]; then
			say "FAIL: added document $i not searchable: $resp"
			exit 1
		fi
		curl -fsS -X POST \
			"$base/corpora?name=corpus&action=removedoc&doc=$ord" >/dev/null
		# The removed document's witness must vanish (near-miss tokens of
		# other added documents may still answer at edit distance 1).
		resp=$(curl -fsS "$base/suggest?q=ingestsmoketoken$i&corpus=corpus")
		case "$resp" in
		*"\"witness\":\"$ord\""*)
			say "FAIL: removed document $i (witness $ord) still served: $resp"
			exit 1
			;;
		esac
	fi
	i=$((i + 1))
done

say "stopping query loop"
touch "$tmp/qstop"
sleep 1
if [ -s "$tmp/qfail" ]; then
	say "FAIL: $(wc -l <"$tmp/qfail") query errors during ingest"
	exit 1
fi

status=$(curl -fsS "$base/corpora")
echo "$status"
compactions=$(printf %s "$status" | grep -o '"compactions":[0-9]*' | head -1 | cut -d: -f2)
if [ -z "$compactions" ] || [ "$compactions" -lt 1 ]; then
	say "FAIL: no compaction completed (compactions=$compactions)"
	exit 1
fi
say "compactions completed: $compactions"

say "flushing the segment stack"
flush=$(curl -fsS -X POST "$base/corpora?name=corpus&action=flush")
echo "$flush"
case "$flush" in
*'"segments":{"segments":1,"tailDocs":0,"tombstones":0'*) ;;
*)
	say "FAIL: flush did not flatten the stack"
	exit 1
	;;
esac

# Surviving added content still answers after the flush.
resp=$(curl -fsS "$base/suggest?q=ingestsmoketoken23&corpus=corpus")
case "$resp" in
*'"suggestions":[]'*)
	say "FAIL: surviving document lost after flush: $resp"
	exit 1
	;;
esac

say "OK"
