#!/bin/sh
# cluster_smoke.sh — end-to-end scatter-gather smoke test.
#
# Boots two shard servers plus one coordinator on loopback, runs one
# query through the cluster (asserting a complete answer), then kills
# one shard mid-flight and asserts the coordinator degrades to a
# well-formed "partial": true answer instead of erroring or hanging.
#
# Run via `make cluster-smoke`. Requires only the go toolchain and curl.
set -eu

PORT_SHARD0=18091
PORT_SHARD1=18092
PORT_COORD=18090

tmp=$(mktemp -d)
pids=""
cleanup() {
	for pid in $pids; do
		kill "$pid" 2>/dev/null || true
	done
	wait 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

say() { echo "cluster-smoke: $*"; }

# wait_http <url> — poll until the endpoint answers (any status).
wait_http() {
	i=0
	while ! curl -fsS -o /dev/null --max-time 1 "$1" 2>/dev/null; do
		i=$((i + 1))
		if [ "$i" -ge 50 ]; then
			say "timeout waiting for $1"
			exit 1
		fi
		sleep 0.2
	done
}

say "building binaries"
go build -o "$tmp/xgen" ./cmd/xgen
go build -o "$tmp/xclean" ./cmd/xclean
go build -o "$tmp/xserve" ./cmd/xserve

say "generating corpus and shard indexes"
"$tmp/xgen" -out "$tmp/corpus.xml" -kind dblp -articles 500 -queries 1
"$tmp/xclean" -doc "$tmp/corpus.xml" -save-index "$tmp/shard0.idx" -shard 0/2
"$tmp/xclean" -doc "$tmp/corpus.xml" -save-index "$tmp/shard1.idx" -shard 1/2
q=$(head -1 "$tmp/corpus.xml.queries.tsv" | cut -f2)

say "starting shard servers"
"$tmp/xserve" -index "$tmp/shard0.idx" -addr "127.0.0.1:$PORT_SHARD0" -q &
pids="$pids $!"
"$tmp/xserve" -index "$tmp/shard1.idx" -addr "127.0.0.1:$PORT_SHARD1" -q &
shard1_pid=$!
pids="$pids $shard1_pid"
wait_http "http://127.0.0.1:$PORT_SHARD0/healthz"
wait_http "http://127.0.0.1:$PORT_SHARD1/healthz"

say "starting coordinator"
"$tmp/xserve" -role coordinator \
	-shards "127.0.0.1:$PORT_SHARD0,127.0.0.1:$PORT_SHARD1" \
	-addr "127.0.0.1:$PORT_COORD" -cache 0 -shard-timeout 5s -q &
pids="$pids $!"
wait_http "http://127.0.0.1:$PORT_COORD/healthz"

say "query with both shards up: $q"
url="http://127.0.0.1:$PORT_COORD/suggest?q=$(printf %s "$q" | sed 's/ /+/g')"
resp=$(curl -fsS "$url")
echo "$resp"
case "$resp" in
*'"partial":true'*)
	say "FAIL: healthy cluster answered partial"
	exit 1
	;;
esac
case "$resp" in
*'"suggestions":[]'* | *'"suggestions":null'*)
	say "FAIL: healthy cluster returned no suggestions"
	exit 1
	;;
esac

say "killing shard 1 mid-flight"
kill "$shard1_pid"
wait "$shard1_pid" 2>/dev/null || true

resp=$(curl -fsS --max-time 10 "$url")
echo "$resp"
case "$resp" in
*'"partial":true'*) ;;
*)
	say "FAIL: degraded cluster did not answer partial:true"
	exit 1
	;;
esac

health=$(curl -sS "http://127.0.0.1:$PORT_COORD/healthz")
echo "$health"
case "$health" in
*'"status":"degraded"'*) ;;
*)
	say "FAIL: /healthz did not report degraded"
	exit 1
	;;
esac

say "OK"
