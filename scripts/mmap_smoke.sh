#!/bin/sh
# mmap_smoke.sh — end-to-end snapshot warm-start smoke test.
#
# Builds a generated corpus once, saves it in the mmap-able seg
# snapshot format, then reopens it and asserts the two properties the
# format exists for:
#
#   1. Warm-start speed: opening the snapshot must be at least 10x
#      faster than the cold XML build, and under an absolute budget of
#      250ms — open cost is O(schema), not O(corpus), so it stays in
#      the millisecond range no matter how large the corpus grows.
#   2. Parity: the reopened engine's suggestions for a generated typo
#      query must be byte-identical to the cold engine's.
#
# Run via `make mmap-smoke`. Requires only the go toolchain.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

say() { echo "mmap-smoke: $*"; }

# dur_ms FILE — extract the "indexed in <dur>: ..." stderr line and
# print the duration as integer milliseconds (handles ms, s, and m+s).
dur_ms() {
	awk '/indexed in/ {
		d = $3; sub(/:$/, "", d); ms = 0
		if (d ~ /^[0-9.]+ms$/) { ms = substr(d, 1, length(d) - 2) }
		else if (d ~ /^[0-9.]+s$/) { ms = substr(d, 1, length(d) - 1) * 1000 }
		else if (d ~ /^[0-9]+m[0-9.]+s$/) {
			m = d; sub(/m.*/, "", m)
			s = d; sub(/^[0-9]+m/, "", s); sub(/s$/, "", s)
			ms = m * 60000 + s * 1000
		}
		printf "%d\n", ms; exit
	}' "$1"
}

say "building xclean and generating a 4000-article corpus"
go build -o "$tmp/xclean" ./cmd/xclean
go run ./cmd/xgen -out "$tmp/corpus.xml" -kind dblp -articles 4000 -queries 3 >/dev/null

q=$(head -1 "$tmp/corpus.xml.queries.tsv" | cut -f2)
say "query: $q"

say "cold build + snapshot save"
"$tmp/xclean" -doc "$tmp/corpus.xml" -save-index "$tmp/corpus.seg" 2>"$tmp/cold.err"
cold_ms=$(dur_ms "$tmp/cold.err")

"$tmp/xclean" -doc "$tmp/corpus.xml" "$q" >"$tmp/cold.out" 2>/dev/null

say "warm-start from the mmap'd snapshot"
"$tmp/xclean" -index "$tmp/corpus.seg" "$q" >"$tmp/warm.out" 2>"$tmp/warm.err"
warm_ms=$(dur_ms "$tmp/warm.err")

say "cold build ${cold_ms}ms, warm open ${warm_ms}ms"

if ! diff "$tmp/cold.out" "$tmp/warm.out" >/dev/null; then
	say "FAIL: snapshot suggestions diverge from the cold engine"
	diff "$tmp/cold.out" "$tmp/warm.out" || true
	exit 1
fi

if [ "$((warm_ms * 10))" -gt "$cold_ms" ]; then
	say "FAIL: warm open ${warm_ms}ms is not 10x faster than cold build ${cold_ms}ms"
	exit 1
fi
if [ "$warm_ms" -gt 250 ]; then
	say "FAIL: warm open ${warm_ms}ms exceeds the 250ms budget"
	exit 1
fi

# The NoMmap fallback must answer identically too.
"$tmp/xclean" -index "$tmp/corpus.seg" -no-mmap "$q" >"$tmp/heap.out" 2>/dev/null
if ! diff "$tmp/warm.out" "$tmp/heap.out" >/dev/null; then
	say "FAIL: -no-mmap fallback diverges from the mmap path"
	exit 1
fi

say "OK (warm-start ${warm_ms}ms vs cold ${cold_ms}ms, parity held)"
