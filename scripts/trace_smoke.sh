#!/bin/sh
# trace_smoke.sh — end-to-end distributed-tracing smoke test.
#
# Boots two shard servers — one artificially slowed with -inject-delay
# — plus a tracing coordinator on loopback, sends one traced query
# through the cluster, and asserts:
#
#   1. the response echoes a traceparent carrying the trace ID;
#   2. the tail sampler retained the slow trace (the injected delay
#      pushes it over -trace-threshold);
#   3. /tracez?id= returns the stitched tree: coordinator root span,
#      per-shard attempt spans, and the slow shard's stage spans;
#   4. /readyz reports ready on the coordinator (quorum up).
#
# Run via `make trace-smoke`. Requires only the go toolchain and curl.
set -eu

PORT_SHARD0=18191
PORT_SHARD1=18192
PORT_COORD=18190
DELAY=400ms # injected shard slowness, well over the 100ms threshold

tmp=$(mktemp -d)
pids=""
cleanup() {
	for pid in $pids; do
		kill "$pid" 2>/dev/null || true
	done
	wait 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

say() { echo "trace-smoke: $*"; }

wait_http() {
	i=0
	while ! curl -fsS -o /dev/null --max-time 1 "$1" 2>/dev/null; do
		i=$((i + 1))
		if [ "$i" -ge 50 ]; then
			say "timeout waiting for $1"
			exit 1
		fi
		sleep 0.2
	done
}

say "building binaries"
go build -o "$tmp/xgen" ./cmd/xgen
go build -o "$tmp/xclean" ./cmd/xclean
go build -o "$tmp/xserve" ./cmd/xserve

say "generating corpus and shard indexes"
"$tmp/xgen" -out "$tmp/corpus.xml" -kind dblp -articles 500 -queries 1
"$tmp/xclean" -doc "$tmp/corpus.xml" -save-index "$tmp/shard0.idx" -shard 0/2
"$tmp/xclean" -doc "$tmp/corpus.xml" -save-index "$tmp/shard1.idx" -shard 1/2
q=$(head -1 "$tmp/corpus.xml.queries.tsv" | cut -f2)

say "starting shard servers (shard 1 slowed by $DELAY)"
"$tmp/xserve" -index "$tmp/shard0.idx" -addr "127.0.0.1:$PORT_SHARD0" -q &
pids="$pids $!"
"$tmp/xserve" -index "$tmp/shard1.idx" -addr "127.0.0.1:$PORT_SHARD1" \
	-inject-delay "$DELAY" -q &
pids="$pids $!"
wait_http "http://127.0.0.1:$PORT_SHARD0/healthz"
wait_http "http://127.0.0.1:$PORT_SHARD1/healthz"

say "starting tracing coordinator"
"$tmp/xserve" -role coordinator \
	-shards "127.0.0.1:$PORT_SHARD0,127.0.0.1:$PORT_SHARD1" \
	-addr "127.0.0.1:$PORT_COORD" -cache 0 -shard-timeout 5s \
	-trace-sample 1 -trace-buffer 64 -trace-threshold 100ms -q &
pids="$pids $!"
wait_http "http://127.0.0.1:$PORT_COORD/healthz"

say "readiness: quorum up"
ready=$(curl -sS "http://127.0.0.1:$PORT_COORD/readyz")
echo "$ready"
case "$ready" in
*'"ready":true'*) ;;
*)
	say "FAIL: coordinator not ready with both shards up"
	exit 1
	;;
esac

say "traced query through the slow cluster: $q"
url="http://127.0.0.1:$PORT_COORD/suggest?q=$(printf %s "$q" | sed 's/ /+/g')"
hdrs=$tmp/headers
resp=$(curl -fsS -D "$hdrs" --max-time 15 "$url")
echo "$resp"

tp=$(grep -i '^traceparent:' "$hdrs" | tr -d '\r' | awk '{print $2}')
if [ -z "$tp" ]; then
	say "FAIL: response carried no traceparent header"
	exit 1
fi
trace_id=$(printf %s "$tp" | cut -d- -f2)
say "trace id: $trace_id"

say "fetching the stitched tree from /tracez"
tree=$(curl -fsS "http://127.0.0.1:$PORT_COORD/tracez?id=$trace_id")
echo "$tree" | head -c 2000
echo

# The injected delay made the trace slow, so the tail sampler must
# have retained it in the protected ring.
case "$tree" in
*'"retained":"slow"'*) ;;
*)
	say "FAIL: slow trace not retained as \"slow\" (threshold=100ms, delay=$DELAY)"
	exit 1
	;;
esac
# Coordinator root span → per-shard attempt spans → shard stage spans.
case "$tree" in
*'"name":"shard.attempt"'*) ;;
*)
	say "FAIL: stitched tree has no shard.attempt spans"
	exit 1
	;;
esac
case "$tree" in
*'"name":"shard.suggest"'*) ;;
*)
	say "FAIL: stitched tree has no shard-side server spans"
	exit 1
	;;
esac
# Stage spans carry the engine's stage taxonomy names under the
# shard's server span.
case "$tree" in
*'"name":"scan"'*) ;;
*)
	say "FAIL: stitched tree has no shard stage spans"
	exit 1
	;;
esac

say "trace store stats"
curl -fsS "http://127.0.0.1:$PORT_COORD/tracez?n=5" | head -c 1000
echo

say "OK"
