// replicaload is the load driver of the replica-smoke drill
// (scripts/replica_smoke.sh): it hammers a coordinator with a fixed
// query set for a fixed duration — single GETs plus periodic batched
// POSTs — while the drill kills one replica per shard mid-run, and
// fails if ANY response comes back partial:true, errors, or deviates
// from a standalone reference server's scores by more than 1e-12
// relative. With every shard keeping one live replica, degradation is
// a bug, not an expected outcome.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"time"
)

type suggestion struct {
	Query string  `json:"query"`
	Score float64 `json:"score"`
}

type suggestResponse struct {
	Query       string       `json:"query"`
	Suggestions []suggestion `json:"suggestions"`
	Partial     bool         `json:"partial"`
}

type batchResponse struct {
	Partial bool              `json:"partial"`
	Results []suggestResponse `json:"results"`
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return json.Unmarshal(body, out)
}

// loadQueries reads the xgen queries TSV (type<TAB>query per line).
func loadQueries(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var qs []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Split(sc.Text(), "\t")
		if len(fields) >= 2 && fields[1] != "" {
			qs = append(qs, fields[1])
		}
	}
	return qs, sc.Err()
}

// matches reports whether got reproduces want within 1e-12 relative
// score error (and identical suggestion text, order included).
func matches(got, want []suggestion) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d suggestions, reference has %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Query != want[i].Query {
			return fmt.Errorf("rank %d: %q, reference %q", i, got[i].Query, want[i].Query)
		}
		if diff := math.Abs(got[i].Score - want[i].Score); diff > 1e-12*math.Max(1, math.Abs(want[i].Score)) {
			return fmt.Errorf("rank %d (%q): score %.15g, reference %.15g",
				i, got[i].Query, got[i].Score, want[i].Score)
		}
	}
	return nil
}

func main() {
	coord := flag.String("coord", "", "coordinator base URL")
	ref := flag.String("ref", "", "standalone reference server base URL")
	queriesPath := flag.String("queries", "", "xgen queries TSV")
	duration := flag.Duration("duration", 6*time.Second, "how long to sustain load")
	batchEvery := flag.Int("batch-every", 7, "send a batched POST every N iterations")
	flag.Parse()
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "replicaload: FAIL: "+format+"\n", args...)
		os.Exit(1)
	}
	if *coord == "" || *ref == "" || *queriesPath == "" {
		fail("need -coord, -ref, and -queries")
	}
	queries, err := loadQueries(*queriesPath)
	if err != nil || len(queries) == 0 {
		fail("load queries from %s: %v (%d queries)", *queriesPath, err, len(queries))
	}
	client := &http.Client{Timeout: 10 * time.Second}

	// Pin the ground truth once from the standalone reference server.
	want := make(map[string][]suggestion, len(queries))
	for _, q := range queries {
		var sr suggestResponse
		if err := getJSON(client, *ref+"/suggest?q="+strings.ReplaceAll(q, " ", "+"), &sr); err != nil {
			fail("reference answer for %q: %v", q, err)
		}
		want[q] = sr.Suggestions
	}

	deadline := time.Now().Add(*duration)
	singles, batches := 0, 0
	for i := 0; time.Now().Before(deadline); i++ {
		q := queries[i%len(queries)]
		if *batchEvery > 0 && i%*batchEvery == *batchEvery-1 {
			// Batched POST: a window of queries in one round-trip.
			win := make([]string, 0, 4)
			for j := 0; j < 4; j++ {
				win = append(win, queries[(i+j)%len(queries)])
			}
			body, _ := json.Marshal(map[string]any{"queries": win})
			resp, err := client.Post(*coord+"/suggest", "application/json", bytes.NewReader(body))
			if err != nil {
				fail("batch POST: %v", err)
			}
			raw, _ := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fail("batch POST: HTTP %d: %s", resp.StatusCode, raw)
			}
			var br batchResponse
			if err := json.Unmarshal(raw, &br); err != nil {
				fail("batch POST: bad body: %v", err)
			}
			if br.Partial {
				fail("batch answered partial:true with a live replica per shard: %s", raw)
			}
			if len(br.Results) != len(win) {
				fail("batch returned %d results for %d queries", len(br.Results), len(win))
			}
			for j, r := range br.Results {
				if r.Partial {
					fail("batch entry %q partial:true", win[j])
				}
				if err := matches(r.Suggestions, want[win[j]]); err != nil {
					fail("batch entry %q: %v", win[j], err)
				}
			}
			batches++
			continue
		}
		var sr suggestResponse
		if err := getJSON(client, *coord+"/suggest?q="+strings.ReplaceAll(q, " ", "+"), &sr); err != nil {
			fail("suggest %q: %v", q, err)
		}
		if sr.Partial {
			fail("%q answered partial:true with a live replica per shard", q)
		}
		if err := matches(sr.Suggestions, want[q]); err != nil {
			fail("%q: %v", q, err)
		}
		singles++
	}
	fmt.Printf("replicaload: OK (%d single requests, %d batches, 0 partial)\n", singles, batches)
}
