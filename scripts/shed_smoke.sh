#!/bin/sh
# shed_smoke.sh — end-to-end admission-control smoke test.
#
# Boots one xserve with the tightest possible admission bounds
# (-max-inflight 1 -max-queue 0), saturates it with a barrier-released
# burst of concurrent requests, and asserts that at least one was shed
# with HTTP 429 carrying a Retry-After header and the JSON error
# envelope — while the server still answers 200 once the burst drains.
#
# The load generator is a tiny Go program (curl processes stagger
# their connects by more than a scan takes, so they never collide on
# the admission gate; a goroutine barrier does). The server runs with
# GOMAXPROCS>=4 so that even on a single-CPU runner the OS timeslices
# its threads and concurrent acquires genuinely overlap a running
# scan.
#
# Run via `make shed-smoke`. Requires only the go toolchain and curl.
set -eu

PORT=18093

tmp=$(mktemp -d)
pids=""
cleanup() {
	for pid in $pids; do
		kill "$pid" 2>/dev/null || true
	done
	wait 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

say() { echo "shed-smoke: $*"; }

wait_http() {
	i=0
	while ! curl -fsS -o /dev/null --max-time 1 "$1" 2>/dev/null; do
		i=$((i + 1))
		if [ "$i" -ge 100 ]; then
			say "timeout waiting for $1"
			exit 1
		fi
		sleep 0.2
	done
}

say "building binaries"
go build -o "$tmp/xgen" ./cmd/xgen
go build -o "$tmp/xserve" ./cmd/xserve

mkdir "$tmp/saturate"
cat > "$tmp/saturate/main.go" <<'EOF'
// saturate: fire N concurrent GETs released by a goroutine barrier
// and report status counts plus the first 429's header and body.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
)

func main() {
	url, n := os.Args[1], 0
	n, _ = strconv.Atoi(os.Args[2])
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[int]int{}
	retryAfter, shedBody := "", ""
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, err := http.Get(url)
			if err != nil {
				mu.Lock()
				counts[-1]++
				mu.Unlock()
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			mu.Lock()
			counts[resp.StatusCode]++
			if resp.StatusCode == http.StatusTooManyRequests && shedBody == "" {
				retryAfter = resp.Header.Get("Retry-After")
				shedBody = string(body)
			}
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()
	for code, c := range counts {
		fmt.Printf("status=%d count=%d\n", code, c)
	}
	if shedBody != "" {
		fmt.Printf("retry-after=%s\n", retryAfter)
		fmt.Printf("shed-body=%s\n", shedBody)
	}
}
EOF
(cd "$tmp/saturate" && go mod init saturate >/dev/null 2>&1 && go build -o "$tmp/saturate.bin" .)

say "generating corpus"
"$tmp/xgen" -out "$tmp/corpus.xml" -kind dblp -articles 10000 -queries 1

say "starting xserve with -max-inflight 1 -max-queue 0"
GOMAXPROCS=4 "$tmp/xserve" -doc "$tmp/corpus.xml" -addr "127.0.0.1:$PORT" \
	-max-inflight 1 -max-queue 0 -cache 0 -eps 3 -workers 1 -q &
pids="$pids $!"
wait_http "http://127.0.0.1:$PORT/healthz"

# A multi-keyword dirty query keeps each scan busy for a few
# milliseconds, widening the collision window on the admission gate.
url="http://127.0.0.1:$PORT/suggest?q=aproximate+retrival+clasification+efficent+algorthm+procesing"

say "saturating with barrier-released concurrent bursts"
round=0
out=""
while [ "$round" -lt 10 ]; do
	out=$("$tmp/saturate.bin" "$url" 40)
	echo "$out" | head -3
	case "$out" in
	*"status=429"*) break ;;
	esac
	round=$((round + 1))
done
case "$out" in
*"status=429"*) ;;
*)
	say "FAIL: no request was shed with 429 under saturation"
	exit 1
	;;
esac
case "$out" in
*"retry-after=1"*) ;;
*)
	say "FAIL: 429 response lacks Retry-After: 1"
	echo "$out"
	exit 1
	;;
esac
case "$out" in
*'"error"'*) ;;
*)
	say "FAIL: 429 body is not the JSON error envelope"
	echo "$out"
	exit 1
	;;
esac

say "burst drained; server must still answer 200"
resp=$(curl -fsS --max-time 10 "$url")
case "$resp" in
*'"suggestions"'*) ;;
*)
	say "FAIL: post-burst request did not answer: $resp"
	exit 1
	;;
esac

metrics=$(curl -fsS "http://127.0.0.1:$PORT/metricz")
case "$metrics" in
*'"sheds":0'*)
	say "FAIL: /metricz reports zero sheds after a shed burst"
	exit 1
	;;
esac

say "OK"
