#!/bin/sh
# replica_smoke.sh — end-to-end replica-failover drill.
#
# Boots two shards × two replicas each (four shard servers over two
# shard indexes), a standalone reference server over the unsharded
# index, and one coordinator with -cache 0. A Go loader
# (scripts/replicaload) then sustains mixed GET + batched-POST load
# while this script kills one replica of each shard mid-run. With
# every shard keeping a live replica, the drill asserts:
#
#   - ZERO "partial": true responses — the hedged retry and failure
#     cooldown must absorb the dead replicas invisibly;
#   - every answer's scores within 1e-12 of the standalone reference;
#   - /readyz stays 200 (coverage intact) after the kills.
#
# Run via `make replica-smoke`. Requires only the go toolchain and curl.
set -eu

PORT_S0R0=18101
PORT_S0R1=18102
PORT_S1R0=18103
PORT_S1R1=18104
PORT_REF=18105
PORT_COORD=18100

tmp=$(mktemp -d)
pids=""
cleanup() {
	for pid in $pids; do
		kill "$pid" 2>/dev/null || true
	done
	wait 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

say() { echo "replica-smoke: $*"; }

# wait_http <url> — poll until the endpoint answers (any status).
wait_http() {
	i=0
	while ! curl -fsS -o /dev/null --max-time 1 "$1" 2>/dev/null; do
		i=$((i + 1))
		if [ "$i" -ge 50 ]; then
			say "timeout waiting for $1"
			exit 1
		fi
		sleep 0.2
	done
}

say "building binaries"
go build -o "$tmp/xgen" ./cmd/xgen
go build -o "$tmp/xclean" ./cmd/xclean
go build -o "$tmp/xserve" ./cmd/xserve
go build -o "$tmp/replicaload" ./scripts/replicaload

say "generating corpus, shard indexes, and the reference index"
"$tmp/xgen" -out "$tmp/corpus.xml" -kind dblp -articles 500 -queries 8
"$tmp/xclean" -doc "$tmp/corpus.xml" -save-index "$tmp/full.idx"
"$tmp/xclean" -doc "$tmp/corpus.xml" -save-index "$tmp/shard0.idx" -shard 0/2
"$tmp/xclean" -doc "$tmp/corpus.xml" -save-index "$tmp/shard1.idx" -shard 1/2

say "starting 2 shards x 2 replicas + the standalone reference"
"$tmp/xserve" -index "$tmp/shard0.idx" -addr "127.0.0.1:$PORT_S0R0" -q &
s0r0_pid=$!
pids="$pids $s0r0_pid"
"$tmp/xserve" -index "$tmp/shard0.idx" -addr "127.0.0.1:$PORT_S0R1" -q &
pids="$pids $!"
"$tmp/xserve" -index "$tmp/shard1.idx" -addr "127.0.0.1:$PORT_S1R0" -q &
pids="$pids $!"
"$tmp/xserve" -index "$tmp/shard1.idx" -addr "127.0.0.1:$PORT_S1R1" -q &
s1r1_pid=$!
pids="$pids $s1r1_pid"
"$tmp/xserve" -index "$tmp/full.idx" -addr "127.0.0.1:$PORT_REF" -q &
pids="$pids $!"
for port in $PORT_S0R0 $PORT_S0R1 $PORT_S1R0 $PORT_S1R1 $PORT_REF; do
	wait_http "http://127.0.0.1:$port/healthz"
done

say "starting coordinator over the replicated topology"
"$tmp/xserve" -role coordinator \
	-shard-replicas "127.0.0.1:$PORT_S0R0,127.0.0.1:$PORT_S0R1;127.0.0.1:$PORT_S1R0,127.0.0.1:$PORT_S1R1" \
	-addr "127.0.0.1:$PORT_COORD" -cache 0 -shard-timeout 5s -hedge-after 150ms -q &
pids="$pids $!"
wait_http "http://127.0.0.1:$PORT_COORD/readyz"

say "sustaining load; killing one replica of each shard at T+2s"
(
	sleep 2
	say "killing shard0/r0 (pid $s0r0_pid) and shard1/r1 (pid $s1r1_pid)"
	kill "$s0r0_pid" "$s1r1_pid" 2>/dev/null || true
) &
pids="$pids $!"

"$tmp/replicaload" \
	-coord "http://127.0.0.1:$PORT_COORD" \
	-ref "http://127.0.0.1:$PORT_REF" \
	-queries "$tmp/corpus.xml.queries.tsv" \
	-duration 6s

say "checking /readyz kept full shard coverage"
ready=$(curl -fsS --max-time 5 "http://127.0.0.1:$PORT_COORD/readyz")
echo "$ready"
case "$ready" in
*'"ready":true'*) ;;
*)
	say "FAIL: coordinator unready after losing one replica per shard"
	exit 1
	;;
esac

say "checking per-replica metrics attribution"
metrics=$(curl -fsS --max-time 5 "http://127.0.0.1:$PORT_COORD/metricz")
case "$metrics" in
*'"replica":"shard0/r0@'*) ;;
*)
	say "FAIL: /metricz has no per-replica series"
	exit 1
	;;
esac

say "OK"
