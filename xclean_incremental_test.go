package xclean

import (
	"strings"
	"testing"
)

func TestEngineAddDocument(t *testing.T) {
	e := openSample(t, Options{})
	// A token that does not exist yet.
	if got := e.Suggest("quantum processing"); got != nil {
		t.Fatalf("premature suggestions: %v", got)
	}
	err := e.AddDocument(strings.NewReader(
		`<article><author>zhang</author><title>quantum query processing</title></article>`))
	if err != nil {
		t.Fatal(err)
	}
	// The new vocabulary is immediately searchable, including through
	// the rebuilt variant index.
	sugs := e.Suggest("quantim processing")
	if len(sugs) == 0 || sugs[0].Query != "quantum processing" {
		t.Fatalf("after add: %v", sugs)
	}
	if sugs[0].Entities < 1 {
		t.Error("non-empty guarantee violated")
	}
	// Old content still answers.
	if got := e.Suggest("rose architecure fpga"); len(got) == 0 {
		t.Error("old content lost")
	}
	// Stats reflect the growth (17 original + 3 new nodes).
	if st := e.Stats(); st.Nodes != 20 {
		t.Errorf("nodes=%d want 20", st.Nodes)
	}
}

func TestEngineAddDocumentErrors(t *testing.T) {
	e := openSample(t, Options{})
	if err := e.AddDocument(strings.NewReader("<broken>")); err == nil {
		t.Error("malformed document accepted")
	}
	// Compacted engines accept writes: the segmented store leaves the
	// compacted base segment untouched and buffers the new document in
	// a raw-postings tail.
	compact := openSample(t, Options{CompactPostings: true})
	err := compact.AddDocument(strings.NewReader(
		`<article><author>nguyen</author><title>streaming compaction</title></article>`))
	if err != nil {
		t.Errorf("compacted engine rejected a live write: %v", err)
	}
	if sugs := compact.Suggest("streaming compaction"); len(sugs) == 0 {
		t.Error("write to compacted engine not searchable")
	}
	// SLCA engines keep the legacy path, which still rejects compacted
	// indexes.
	slcaCompact := openSample(t, Options{CompactPostings: true, Semantics: SemanticsSLCA})
	if err := slcaCompact.AddDocument(strings.NewReader("<a><b>x</b></a>")); err == nil {
		t.Error("compacted SLCA engine mutated")
	}
}

func TestEngineRemoveDocument(t *testing.T) {
	e := openSample(t, Options{StoreText: true})
	// "indexing" lives only in article 1.3 ("mary smith").
	if got := e.Suggest("databse indexing"); len(got) == 0 {
		t.Fatal("expected suggestions before removal")
	}
	if err := e.RemoveDocument("1.3"); err != nil {
		t.Fatal(err)
	}
	if got := e.Suggest("databse indexing"); got != nil {
		t.Errorf("removed content still suggested: %v", got)
	}
	// Other documents unaffected.
	if got := e.Suggest("rose architecure fpga"); len(got) == 0 {
		t.Error("surviving content lost")
	}
	// Errors surface.
	if err := e.RemoveDocument("not a dewey"); err == nil {
		t.Error("malformed code accepted")
	}
	if err := e.RemoveDocument("1.99"); err == nil {
		t.Error("absent document accepted")
	}
	plain := openSample(t, Options{})
	if err := plain.RemoveDocument("1.1"); err == nil {
		t.Error("removal without StoreText accepted")
	}
}

func TestEngineAddRemoveCycle(t *testing.T) {
	e := openSample(t, Options{StoreText: true})
	doc := `<article><author>zhang</author><title>quantum query processing</title></article>`
	if err := e.AddDocument(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if got := e.Suggest("quantum processing"); len(got) == 0 {
		t.Fatal("added content not searchable")
	}
	// The added document is the fifth child.
	if err := e.RemoveDocument("1.5"); err != nil {
		t.Fatal(err)
	}
	if got := e.Suggest("quantum processing"); got != nil {
		t.Errorf("removed content still suggested: %v", got)
	}
}

func TestEngineAddDocumentSLCA(t *testing.T) {
	e := openSample(t, Options{Semantics: SemanticsSLCA})
	err := e.AddDocument(strings.NewReader(
		`<article><author>zhang</author><title>quantum query processing</title></article>`))
	if err != nil {
		t.Fatal(err)
	}
	if sugs := e.Suggest("zhang quantum"); len(sugs) == 0 {
		t.Error("SLCA engine missed the added document")
	}
}
