// Package xclean provides valid spelling suggestions for XML keyword
// queries, implementing the XClean framework of Lu, Wang, Li, and Liu
// ("XClean: Providing Valid Spelling Suggestions for XML Keyword
// Queries", ICDE 2011).
//
// Given an XML document and a possibly-misspelt keyword query, an
// Engine returns the top-k alternative queries ranked by the
// probability P(C|Q,T) that the user intended candidate C — the
// product of an exponential edit-error model and a query generation
// model: a Dirichlet-smoothed unigram language model evaluated over
// the document's entities (subtrees of the query's inferred result
// type, or per-query SLCA subtrees). Every suggestion is guaranteed to
// have at least one matching entity, i.e. a non-empty query result.
//
// Basic use:
//
//	f, _ := os.Open("corpus.xml")
//	eng, err := xclean.Open(f, xclean.Options{})
//	if err != nil { ... }
//	for _, s := range eng.Suggest("hinrich schutze geo-taging") {
//	    fmt.Println(s.Query, s.Score)
//	}
package xclean

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"xclean/internal/core"
	"xclean/internal/invindex"
	"xclean/internal/obs"
	"xclean/internal/segment"
	"xclean/internal/slca"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// Semantics selects how the XML tree is decomposed into entities.
type Semantics int

const (
	// SemanticsResultType infers the most probable result node type
	// per candidate query and treats nodes of that type as entities
	// (the paper's primary semantics, from XReal).
	SemanticsResultType Semantics = iota
	// SemanticsSLCA uses each candidate's Smallest Lowest Common
	// Ancestor nodes as its entities (Section VI-B).
	SemanticsSLCA
	// SemanticsELCA uses each candidate's Exclusive Lowest Common
	// Ancestor nodes (the XRank semantics) as its entities — a superset
	// of the SLCA set that also keeps ancestors with independent
	// keyword evidence. An extension beyond the paper, demonstrating
	// the framework's claim of accommodating other query semantics.
	SemanticsELCA
)

// Prior selects the entity prior P(r_j|T) of Eq. (8). The paper uses
// a uniform prior and notes the generalization to non-uniform priors;
// these implement it.
type Prior int

const (
	// PriorUniform is the paper's default: every entity equally likely.
	PriorUniform Prior = iota
	// PriorLength weights entities by their virtual-document length.
	PriorLength
	// PriorCustom weights entities by Options.EntityWeights (e.g.
	// click counts from a query log); unlisted entities weigh 1.
	PriorCustom
)

// Options tunes an Engine. The zero value reproduces the paper's
// defaults: ε=1, β=5, μ=2000, r=0.8, d=2, γ=1000, k=10.
type Options struct {
	// MaxErrors is ε, the maximum edit errors per keyword (0 = 1).
	MaxErrors int
	// ErrorPenalty is β in P(q|w) ∝ exp(-β·ed). 0 means the default 5;
	// negative values mean a literal 0 (no penalty).
	ErrorPenalty float64
	// Smoothing is the Dirichlet μ of the language model (0 = 2000).
	Smoothing float64
	// DepthReduction is the r of the result-type utility (0 = 0.8).
	DepthReduction float64
	// MinDepth is the minimal entity depth d (0 = 2). Entities may not
	// be shallower; in particular the document root never qualifies,
	// which prevents suggesting keyword combinations that are
	// connected only through the root.
	MinDepth int
	// Accumulators is γ, the cap on in-memory candidate score
	// accumulators (0 = 1000; negative = unlimited).
	Accumulators int
	// TopK is the number of suggestions returned (0 = 10).
	TopK int
	// Semantics selects the entity decomposition.
	Semantics Semantics
	// MaxSpaceChanges is τ for SuggestWithSpaces (0 = 1).
	MaxSpaceChanges int
	// MinTokenLength is the shortest indexed token (0 = 3, the paper's
	// setting; shorter tokens and stop words are not indexed).
	MinTokenLength int
	// PhoneticMatching additionally admits Soundex-equivalent
	// vocabulary words as keyword variants (the cognitive-error
	// extension of Section VI-A).
	PhoneticMatching bool
	// CompactPostings stores posting lists block-compressed in memory
	// (delta-encoded Dewey codes). Suggestions are identical; the index
	// is several-fold smaller and queries stream-decode the lists.
	CompactPostings bool
	// Synonyms maps keywords to alternative terms (thesaurus /
	// ontology); in-vocabulary synonyms join the variant set.
	Synonyms map[string][]string
	// BigramCoherence multiplies every candidate's score by the
	// interpolated bigram probability of its keyword sequence — the
	// language-model extension beyond the paper's unigram Eq. (9). It
	// penalizes candidates that combine individually-frequent but
	// never-adjacent words.
	BigramCoherence bool
	// BigramLambda is the interpolation weight λ of the bigram model
	// (0 = 0.7).
	BigramLambda float64
	// EntityPrior selects P(r_j|T); the zero value is the paper's
	// uniform prior.
	EntityPrior Prior
	// EntityWeights maps entity root Dewey codes in dot form (such as
	// "1.17.2") to unnormalized prior weights, consulted under
	// PriorCustom. Malformed codes are ignored.
	EntityWeights map[string]float64
	// StoreText keeps a copy of the document text in the index so that
	// Preview can render the witness entity of each suggestion.
	StoreText bool
	// NoMmap makes OpenSnapshot read snapshot files into heap buffers
	// instead of memory-mapping them — the portability/diagnostics
	// escape hatch. Scores are identical; open cost and resident set
	// grow with the file.
	NoMmap bool
	// TailLimit is the number of documents the segmented engine's
	// mutable tail buffers before sealing it into an immutable segment
	// (0 = 64). Consulted only once AddDocument or RemoveDocument has
	// switched the engine to its segmented form.
	TailLimit int
	// CompactInterval, when positive, runs a background segment
	// compaction attempt this often on a segmented engine, in addition
	// to the write-triggered compactor. Zero leaves only write-triggered
	// compaction.
	CompactInterval time.Duration
	// Workers bounds the parallelism of one suggestion call: the
	// anchor-subtree scan of Algorithm 1 is sharded across this many
	// goroutines (and SuggestWithSpaces runs up to this many shapes
	// concurrently). 0 uses GOMAXPROCS; 1 forces the exact sequential
	// execution. Results are identical either way, up to floating-point
	// summation order.
	Workers int
}

func (o Options) coreConfig() core.Config {
	var custom map[string]float64
	if len(o.EntityWeights) > 0 {
		custom = make(map[string]float64, len(o.EntityWeights))
		for code, w := range o.EntityWeights {
			d, err := xmltree.ParseDewey(code)
			if err != nil {
				continue
			}
			custom[d.Key()] = w
		}
	}
	return core.Config{
		Prior:           core.Prior(o.EntityPrior),
		CustomPrior:     custom,
		Bigram:          o.BigramCoherence,
		BigramLambda:    o.BigramLambda,
		Epsilon:         o.MaxErrors,
		Beta:            o.ErrorPenalty,
		Mu:              o.Smoothing,
		R:               o.DepthReduction,
		MinDepth:        o.MinDepth,
		Gamma:           o.Accumulators,
		K:               o.TopK,
		MaxSpaceChanges: o.MaxSpaceChanges,
		Phonetic:        o.PhoneticMatching,
		Synonyms:        o.Synonyms,
		Workers:         o.Workers,
		Tokenizer:       o.tokenizerOptions(),
	}
}

func (o Options) tokenizerOptions() tokenizer.Options {
	return tokenizer.Options{MinLength: o.MinTokenLength}
}

// Suggestion is one alternative query.
type Suggestion struct {
	// Query is the suggested query string.
	Query string
	// Words are its keywords.
	Words []string
	// Score is proportional to P(C|Q,T); comparable within one call.
	Score float64
	// ResultType is the inferred result node type as a label path such
	// as "/dblp/article" (empty under SLCA semantics).
	ResultType string
	// Entities is the number of entities matching every keyword; it is
	// always ≥ 1 — suggested queries are guaranteed non-empty results.
	Entities int
	// EditDistance is the total edit distance from the input query.
	EditDistance int
	// Witness is the Dewey code (dot form, e.g. "1.17") of the first
	// entity that matched every keyword — the concrete exhibit of the
	// non-empty-result guarantee. Pass the suggestion to Preview to
	// render its text (requires Options.StoreText).
	Witness string
}

// IndexStats summarizes the indexed document.
type IndexStats struct {
	Nodes         int
	MaxDepth      int
	Tokens        int64
	DistinctTerms int
	LabelPaths    int
}

// Engine answers suggestion queries over one indexed XML document.
//
// An Engine starts monolithic: one index, one core engine. The first
// AddDocument or RemoveDocument switches it to the segmented form — a
// stack of immutable sealed segments plus a mutable tail
// (internal/segment) — after which a single writer may keep mutating
// the corpus while any number of readers call the Suggest family
// concurrently. Whenever the stack is flat (one segment, no pending
// tombstones — including after a flush), queries transparently take
// the monolithic fast path.
type Engine struct {
	opts Options
	// src is the read surface queries scan against: the heap index
	// (monolithic engines) or an mmap'd snapshot reader
	// (snapshot-backed engines; see OpenSnapshot).
	src invindex.Source
	// ix is the heap form of the corpus — src itself when the engine
	// was built from a heap index, else materialized lazily by
	// heapIndex on the first operation that needs mutable structures.
	ix    *invindex.Index
	matMu sync.Mutex
	core  *core.Engine
	slca  *slca.Engine
	// seg is the segmented store, non-nil once live writes started
	// (result-type semantics only; SLCA engines keep the legacy
	// stop-the-world mutation path). Atomic so the first write can
	// publish the store while readers are mid-query.
	seg atomic.Pointer[segment.Store]
}

// route picks the serving path for one core-semantics call: a plain
// engine (the monolithic engine, or the stack's single segment when it
// is flat) or the segmented store.
func (e *Engine) route() (*core.Engine, *segment.Store) {
	st := e.seg.Load()
	if st == nil {
		return e.core, nil
	}
	if fe := st.FastEngine(); fe != nil {
		return fe, nil
	}
	return nil, st
}

// paths is the table interpreting result-type IDs: the stack's newest
// table once segmented, the index's own otherwise.
func (e *Engine) paths() *xmltree.PathTable {
	if st := e.seg.Load(); st != nil {
		return st.Paths()
	}
	return e.src.PathTable()
}

// ensureStore lazily wraps the monolithic engine as the base segment
// of a segmented store on the first live write. Only the single
// permitted writer calls it, so the nil check needs no CAS.
func (e *Engine) ensureStore() (*segment.Store, error) {
	if st := e.seg.Load(); st != nil {
		return st, nil
	}
	// The store needs the heap form of the corpus as its base segment;
	// a snapshot-backed engine materializes here, on its first write.
	ix, err := e.heapIndex()
	if err != nil {
		return nil, err
	}
	st, err := segment.NewStore(ix, e.core, segment.Config{
		Core:            e.opts.coreConfig(),
		TailLimit:       e.opts.TailLimit,
		CompactInterval: e.opts.CompactInterval,
		CompactPostings: e.opts.CompactPostings,
		StoreText:       e.opts.StoreText || ix.HasStoredText(),
		Sink:            e.core.Sink(),
	})
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	e.seg.Store(st)
	return st, nil
}

// Open parses one XML document from r and builds a suggestion engine.
func Open(r io.Reader, opts Options) (*Engine, error) {
	tree, err := xmltree.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	return FromTree(tree, opts), nil
}

// OpenStreaming indexes one XML document directly from its byte
// stream without materializing the parsed tree, so peak memory is the
// index plus one root-to-leaf stack. Use it for documents much larger
// than RAM headroom (the paper's INEX collection is 5.8 GB); results
// are identical to Open.
func OpenStreaming(r io.Reader, opts Options) (*Engine, error) {
	var (
		ix  *invindex.Index
		err error
	)
	if opts.StoreText {
		ix, err = invindex.BuildStoredFromReader(r, opts.tokenizerOptions())
	} else {
		ix, err = invindex.BuildFromReader(r, opts.tokenizerOptions())
	}
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	if opts.CompactPostings {
		ix.Compact()
	}
	return FromIndex(ix, opts), nil
}

// OpenFile is Open over a file path.
func OpenFile(path string, opts Options) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	defer f.Close()
	return Open(f, opts)
}

// OpenCollection parses several XML documents and joins them under a
// virtual root, as the paper does for the INEX collection.
func OpenCollection(rootLabel string, opts Options, readers ...io.Reader) (*Engine, error) {
	tree, err := xmltree.ParseCollection(rootLabel, readers...)
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	return FromTree(tree, opts), nil
}

// FromTree builds an engine over an already-parsed tree. It is the
// entry point used by the synthetic-corpus generators.
func FromTree(tree *xmltree.Tree, opts Options) *Engine {
	var ix *invindex.Index
	if opts.StoreText {
		ix = invindex.BuildStored(tree, opts.tokenizerOptions())
	} else {
		ix = invindex.Build(tree, opts.tokenizerOptions())
	}
	if opts.CompactPostings {
		ix.Compact()
	}
	return FromIndex(ix, opts)
}

// OpenIndex loads an index previously written by SaveIndex and builds
// an engine over it — much faster than re-indexing the document. The
// stored tokenization settings override Options.MinTokenLength.
func OpenIndex(r io.Reader, opts Options) (*Engine, error) {
	ix, err := invindex.Load(r)
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	opts.MinTokenLength = ix.TokenizerOptions().MinLength
	return FromIndex(ix, opts), nil
}

// OpenIndexFile opens a persisted index of any supported format,
// sniffing it from the leading magic bytes: the gob format written by
// SaveIndex, a snapfile segment, or a snapshot manifest (both written
// by SaveSnapshot). Snapshot formats open via OpenSnapshot — mmap'd,
// in milliseconds; the gob format is decoded into the heap as before.
func OpenIndexFile(path string, opts Options) (*Engine, error) {
	prefix, err := filePrefix(path, 12)
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	switch {
	case len(prefix) >= 8 && string(prefix[:8]) == "XCSEG001":
		return OpenSnapshot(path, opts)
	case len(prefix) >= 12 && string(prefix) == "XCMANIFEST1\n":
		return OpenSnapshot(path, opts)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	defer f.Close()
	return OpenIndex(f, opts)
}

// SaveIndex writes the engine's index so that OpenIndex can restore it
// without reparsing the document. On a segmented engine the stack is
// first flattened (tail sealed, tombstones purged, segments merged) so
// the snapshot is a single self-contained index.
func (e *Engine) SaveIndex(w io.Writer) error {
	ix, err := e.currentIndex()
	if err != nil {
		return err
	}
	if err := ix.Save(w); err != nil {
		return fmt.Errorf("xclean: %w", err)
	}
	return nil
}

// currentIndex is the single-index form of the corpus: the engine's
// own index while monolithic, the flattened stack once segmented.
func (e *Engine) currentIndex() (*invindex.Index, error) {
	st := e.seg.Load()
	if st == nil {
		return e.heapIndex()
	}
	ix, err := st.Flatten(context.Background())
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	return ix, nil
}

// PartialSet is one shard's un-normalized answer for one query: the
// per-keyword variant hits, per-candidate partial entity sums, and
// local per-type normalizers that a cluster coordinator folds into the
// global top-k (see internal/cluster). It is the payload of the
// /shard/suggest wire format.
type PartialSet = core.PartialSet

// SuggestPartials runs the scan half of a suggestion call and returns
// the shard-local partials instead of ranked suggestions — the shard
// side of the cluster scatter-gather protocol. It requires the
// result-type semantics (the default).
func (e *Engine) SuggestPartials(query string) (PartialSet, error) {
	return e.SuggestPartialsContext(context.Background(), query)
}

// SuggestPartialsContext is SuggestPartials under a context: the scan
// polls ctx cooperatively and a cancelled or expired context makes the
// call return ctx.Err(), so a shard stops scanning as soon as the
// coordinator's forwarded deadline dies.
func (e *Engine) SuggestPartialsContext(ctx context.Context, query string) (PartialSet, error) {
	if e.core == nil {
		return PartialSet{}, fmt.Errorf("xclean: shard partials require the result-type semantics")
	}
	ce, st := e.route()
	if st != nil {
		return PartialSet{}, fmt.Errorf("xclean: shard partials unavailable while the segment stack has pending writes; flush first")
	}
	ps, _, err := ce.SuggestPartialsContext(ctx, query)
	return ps, err
}

// SuggestPartialsExplainedContext is SuggestPartialsContext plus the
// stage spans of the scan (obs.Span per stage, per worker) — the shard
// half of distributed tracing. A traced coordinator request asks its
// shards for this variant so every shard's per-stage timing rides back
// in the response envelope and stitches into the cluster-wide trace.
func (e *Engine) SuggestPartialsExplainedContext(ctx context.Context, query string) (PartialSet, []obs.Span, error) {
	if e.core == nil {
		return PartialSet{}, nil, fmt.Errorf("xclean: shard partials require the result-type semantics")
	}
	ce, st := e.route()
	if st != nil {
		return PartialSet{}, nil, fmt.Errorf("xclean: shard partials unavailable while the segment stack has pending writes; flush first")
	}
	ps, _, spans, err := ce.SuggestPartialsExplainedContext(ctx, query)
	return ps, spans, err
}

// ShardEngine returns an engine over shard `shard` of `n`: the slice
// of the corpus holding the shard'th contiguous range of top-level
// entity roots, with collection-global statistics (vocabulary, type
// lists, bigrams) shared so that per-shard partial scores merge into
// exactly the standalone scores. The slice shares the receiver's
// index tables; neither engine may index further documents afterwards.
func (e *Engine) ShardEngine(shard, n int) (*Engine, error) {
	ix, err := e.currentIndex()
	if err != nil {
		return nil, err
	}
	sl, err := ix.ShardEntities(shard, n)
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	return FromIndex(sl, e.opts), nil
}

// SaveShardIndex writes shard `shard` of `n` in the SaveIndex format,
// loadable with OpenIndex on a shard server.
func (e *Engine) SaveShardIndex(w io.Writer, shard, n int) error {
	ix, err := e.currentIndex()
	if err != nil {
		return err
	}
	sl, err := ix.ShardEntities(shard, n)
	if err != nil {
		return fmt.Errorf("xclean: %w", err)
	}
	if err := sl.Save(w); err != nil {
		return fmt.Errorf("xclean: %w", err)
	}
	return nil
}

// FromIndex builds an engine over a prebuilt index (shared across
// engines with different scoring options).
func FromIndex(ix *invindex.Index, opts Options) *Engine {
	e := &Engine{opts: opts, src: ix, ix: ix}
	switch opts.Semantics {
	case SemanticsSLCA:
		e.slca = slca.NewEngine(ix, opts.coreConfig())
	case SemanticsELCA:
		e.slca = slca.NewELCAEngine(ix, opts.coreConfig())
	default:
		e.core = core.NewEngine(ix, opts.coreConfig())
	}
	return e
}

// Suggest returns the top-k alternative queries for query, best first.
// A nil result means no candidate query has any connected, non-empty
// result.
func (e *Engine) Suggest(query string) []Suggestion {
	if e.slca != nil {
		return e.convert(e.slca.Suggest(query))
	}
	ce, st := e.route()
	if st != nil {
		out, _, _, _ := st.Suggest(context.Background(), query, false, false)
		return e.convertMerged(out)
	}
	return e.convert(ce.Suggest(query))
}

// SuggestContext is Suggest under a context: the anchor-subtree scan
// polls ctx cooperatively (every few dozen subtrees per worker), so a
// cancelled or expired context stops an in-progress call promptly and
// returns ctx.Err() with no suggestions. Passing a context that can
// never be cancelled (context.Background()) costs nothing over
// Suggest.
func (e *Engine) SuggestContext(ctx context.Context, query string) ([]Suggestion, error) {
	if e.slca != nil {
		out, err := e.slca.SuggestContext(ctx, query)
		return e.convert(out), err
	}
	ce, st := e.route()
	if st != nil {
		out, _, _, err := st.Suggest(ctx, query, false, false)
		return e.convertMerged(out), err
	}
	out, err := ce.SuggestContext(ctx, query)
	return e.convert(out), err
}

// SuggestWithSpaces additionally explores insertions and deletions of
// spaces (e.g. "power point" → "powerpoint"), per Section VI-A. Only
// available under the result-type semantics.
func (e *Engine) SuggestWithSpaces(query string) []Suggestion {
	if e.slca != nil {
		return e.convert(e.slca.Suggest(query))
	}
	ce, st := e.route()
	if st != nil {
		out, _, _, _ := st.Suggest(context.Background(), query, true, false)
		return e.convertMerged(out)
	}
	return e.convert(ce.SuggestWithSpaces(query))
}

// SuggestWithSpacesContext is SuggestWithSpaces under a context (see
// SuggestContext). Under SLCA/ELCA semantics it falls back to the
// plain suggestion path, exactly as SuggestWithSpaces does.
func (e *Engine) SuggestWithSpacesContext(ctx context.Context, query string) ([]Suggestion, error) {
	if e.slca != nil {
		out, err := e.slca.SuggestContext(ctx, query)
		return e.convert(out), err
	}
	ce, st := e.route()
	if st != nil {
		out, _, _, err := st.Suggest(ctx, query, true, false)
		return e.convertMerged(out), err
	}
	out, err := ce.SuggestWithSpacesContext(ctx, query)
	return e.convert(out), err
}

// Observer is the metrics sink of an Engine: attach one with
// SetObserver and every suggestion call feeds its latency, per-stage
// timing, and work counters into it. See the obs package for the
// snapshot and Prometheus exposition APIs.
type Observer = obs.Sink

// NewObserver builds an empty metrics sink.
func NewObserver() *Observer { return obs.NewSink() }

// SetObserver attaches a metrics sink (nil detaches it — the default,
// which keeps the suggestion path free of instrumentation cost). Set
// it before serving queries; it must not race with in-flight calls.
func (e *Engine) SetObserver(s *Observer) {
	if e.slca != nil {
		e.slca.SetSink(s)
		return
	}
	e.core.SetSink(s)
	if st := e.seg.Load(); st != nil {
		st.SetSink(s)
	}
}

// Explain is the per-query trace returned by the *Explained variants:
// wall-clock stage spans (with per-worker attribution under parallel
// scans), per-keyword variant counts, work counters, and the scored
// candidate table.
type Explain = core.Explain

// ExplainKeyword is one traced keyword and its variant-family size.
type ExplainKeyword = core.ExplainKeyword

// ExplainCandidate is one row of a trace's scored candidate table.
type ExplainCandidate = core.ExplainCandidate

// SuggestExplained is Suggest plus the full trace of the call. Results
// are identical to Suggest; the call is marginally slower because
// tracing forces stage timing on.
func (e *Engine) SuggestExplained(query string) ([]Suggestion, *Explain) {
	if e.slca != nil {
		out, ex := e.slca.SuggestExplained(query)
		return e.convert(out), ex
	}
	ce, st := e.route()
	if st != nil {
		out, _, ex, _ := st.Suggest(context.Background(), query, false, true)
		return e.convertMerged(out), ex
	}
	out, ex := ce.SuggestExplained(query)
	return e.convert(out), ex
}

// SuggestExplainedContext is SuggestExplained under a context (see
// SuggestContext). A cancelled call returns no trace.
func (e *Engine) SuggestExplainedContext(ctx context.Context, query string) ([]Suggestion, *Explain, error) {
	if e.slca != nil {
		out, ex, err := e.slca.SuggestExplainedContext(ctx, query)
		return e.convert(out), ex, err
	}
	ce, st := e.route()
	if st != nil {
		out, _, ex, err := st.Suggest(ctx, query, false, true)
		return e.convertMerged(out), ex, err
	}
	out, ex, err := ce.SuggestExplainedContext(ctx, query)
	return e.convert(out), ex, err
}

// SuggestWithSpacesExplained is SuggestWithSpaces plus the trace.
// Under SLCA/ELCA semantics it falls back to SuggestExplained, exactly
// as SuggestWithSpaces falls back to Suggest.
func (e *Engine) SuggestWithSpacesExplained(query string) ([]Suggestion, *Explain) {
	if e.slca != nil {
		out, ex := e.slca.SuggestExplained(query)
		return e.convert(out), ex
	}
	ce, st := e.route()
	if st != nil {
		out, _, ex, _ := st.Suggest(context.Background(), query, true, true)
		return e.convertMerged(out), ex
	}
	out, ex := ce.SuggestWithSpacesExplained(query)
	return e.convert(out), ex
}

// SuggestWithSpacesExplainedContext is SuggestWithSpacesExplained
// under a context (see SuggestContext).
func (e *Engine) SuggestWithSpacesExplainedContext(ctx context.Context, query string) ([]Suggestion, *Explain, error) {
	if e.slca != nil {
		out, ex, err := e.slca.SuggestExplainedContext(ctx, query)
		return e.convert(out), ex, err
	}
	ce, st := e.route()
	if st != nil {
		out, _, ex, err := st.Suggest(ctx, query, true, true)
		return e.convertMerged(out), ex, err
	}
	out, ex, err := ce.SuggestWithSpacesExplainedContext(ctx, query)
	return e.convert(out), ex, err
}

// AddDocument parses one XML document from r and adds it to the
// corpus as a new direct child of the indexed root. Under the
// result-type semantics the first write switches the engine to its
// segmented form: the document lands in an in-memory mutable tail
// (sealed into an immutable segment every Options.TailLimit
// documents), the existing index is never mutated, and a background
// compactor keeps the segment stack shallow. Scores are identical to
// re-indexing the enlarged corpus from scratch.
//
// Concurrency: AddDocument and RemoveDocument form a single-writer
// pair — they must not race with each other — but both are safe to
// call concurrently with the Suggest family, which keeps serving a
// consistent snapshot throughout. Engines with CompactPostings accept
// writes too (the compacted base segment stays immutable; new
// documents live in raw-postings segments until compaction).
//
// SLCA/ELCA engines keep the legacy in-place mutation path, which is
// not safe to call concurrently with Suggest and rejects compacted
// indexes.
func (e *Engine) AddDocument(r io.Reader) error {
	tree, err := xmltree.Parse(r)
	if err != nil {
		return fmt.Errorf("xclean: %w", err)
	}
	if e.slca != nil {
		if err := e.ix.AddDocument(tree); err != nil {
			return fmt.Errorf("xclean: %w", err)
		}
		// Extend the shared variant index with the document's tokens
		// (known words are ignored) rather than rebuilding it over the
		// vocabulary.
		tokOpts := e.opts.tokenizerOptions()
		var words []string
		tree.Walk(func(n *xmltree.Node) bool {
			if n.Text != "" {
				words = append(words, tokOpts.Tokenize(n.Text)...)
			}
			return true
		})
		e.slca = e.slca.Refresh(words)
		return nil
	}
	st, err := e.ensureStore()
	if err != nil {
		return err
	}
	if err := st.AddDocument(tree); err != nil {
		return fmt.Errorf("xclean: %w", err)
	}
	return nil
}

// RemoveDocument removes the document rooted at the given Dewey code
// (dot form, e.g. "1.17" — a direct child of the root, as reported by
// Suggestion.Witness truncated to depth 2 or by the document's position
// in the collection) from the corpus, as if it had never been indexed.
// Requires Options.StoreText. Under the result-type semantics the
// engine switches to its segmented form on first write: removal of a
// sealed document records a tombstone that queries filter immediately
// and compaction purges later; removal of a still-buffered tail
// document drops it outright. The same single-writer /
// concurrent-reader contract as AddDocument applies.
//
// SLCA/ELCA engines keep the legacy in-place path (see
// invindex.RemoveDocument), which must not race with Suggest.
func (e *Engine) RemoveDocument(code string) error {
	d, err := xmltree.ParseDewey(code)
	if err != nil {
		return fmt.Errorf("xclean: %w", err)
	}
	if e.slca != nil {
		if err := e.ix.RemoveDocument(d); err != nil {
			return fmt.Errorf("xclean: %w", err)
		}
		e.slca = e.slca.Refresh(nil)
		return nil
	}
	st, err := e.ensureStore()
	if err != nil {
		return err
	}
	if err := st.RemoveDocument(d); err != nil {
		return fmt.Errorf("xclean: %w", err)
	}
	return nil
}

// CompactNow synchronously runs at most one segment compaction step
// (a tombstone purge or a small-segment merge) and reports whether any
// work was done. A no-op on engines that never saw a live write.
func (e *Engine) CompactNow(ctx context.Context) (bool, error) {
	st := e.seg.Load()
	if st == nil {
		return false, nil
	}
	did, err := st.CompactOnce(ctx)
	if err != nil {
		return did, fmt.Errorf("xclean: %w", err)
	}
	return did, nil
}

// FlushSegments merges the whole segment stack — tail sealed,
// tombstones purged — into a single segment, after which queries take
// the monolithic fast path again. A no-op on engines that never saw a
// live write.
func (e *Engine) FlushSegments(ctx context.Context) error {
	st := e.seg.Load()
	if st == nil {
		return nil
	}
	if _, err := st.Flatten(ctx); err != nil {
		return fmt.Errorf("xclean: %w", err)
	}
	return nil
}

// SegmentStats describes a segmented engine's stack shape (all zero
// while the engine is still monolithic).
type SegmentStats = segment.SegStats

// SegmentStats reports the current segment stack.
func (e *Engine) SegmentStats() SegmentStats {
	st := e.seg.Load()
	if st == nil {
		return SegmentStats{}
	}
	return st.SegmentStats()
}

// Close stops the segmented engine's background compaction ticker (if
// any). Queries remain serveable; Close is idempotent and a no-op on
// monolithic engines.
func (e *Engine) Close() {
	if st := e.seg.Load(); st != nil {
		st.Close()
	}
}

// Preview renders up to maxLen runes of the suggestion's witness
// entity — a sample of the query result the suggestion guarantees. It
// returns "" when the engine was built without Options.StoreText or
// the suggestion carries no witness.
func (e *Engine) Preview(s Suggestion, maxLen int) string {
	if s.Witness == "" {
		return ""
	}
	d, err := xmltree.ParseDewey(s.Witness)
	if err != nil {
		return ""
	}
	if st := e.seg.Load(); st != nil {
		return st.SubtreeText(d, maxLen)
	}
	return e.src.SubtreeText(d, maxLen)
}

// Stats describes the indexed document. On a segmented engine the
// counts cover the live stack: tombstoned content is excluded and
// structures the segments share (the root node) are deduplicated.
func (e *Engine) Stats() IndexStats {
	if st := e.seg.Load(); st != nil {
		cs := st.Stats()
		return IndexStats{
			Nodes:         cs.Nodes,
			MaxDepth:      cs.MaxDepth,
			Tokens:        cs.Tokens,
			DistinctTerms: cs.Vocab,
			LabelPaths:    cs.LabelPaths,
		}
	}
	return IndexStats{
		Nodes:         e.src.NodeCount(),
		MaxDepth:      e.src.MaxDepth(),
		Tokens:        e.src.TotalTokens(),
		DistinctTerms: e.src.Vocabulary().Size(),
		LabelPaths:    e.src.PathTable().Len(),
	}
}

func (e *Engine) convert(in []core.Suggestion) []Suggestion {
	if len(in) == 0 {
		return nil
	}
	paths := e.paths()
	out := make([]Suggestion, len(in))
	for i, s := range in {
		rt := ""
		if s.ResultType != xmltree.InvalidPath {
			rt = paths.String(s.ResultType)
		}
		out[i] = Suggestion{
			Query:        s.Query(),
			Words:        s.Words,
			Score:        s.Score,
			ResultType:   rt,
			Entities:     s.Entities,
			EditDistance: s.EditDistance,
			Witness:      s.Witness.String(),
		}
	}
	return out
}

// convertMerged maps the segmented path's merged suggestions (which
// already carry label-path and dot-form strings) to the public type.
func (e *Engine) convertMerged(in []core.MergedSuggestion) []Suggestion {
	if len(in) == 0 {
		return nil
	}
	out := make([]Suggestion, len(in))
	for i, s := range in {
		out[i] = Suggestion{
			Query:        s.Query(),
			Words:        s.Words,
			Score:        s.Score,
			ResultType:   s.ResultType,
			Entities:     s.Entities,
			EditDistance: s.EditDistance,
			Witness:      s.Witness,
		}
	}
	return out
}
