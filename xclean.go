// Package xclean provides valid spelling suggestions for XML keyword
// queries, implementing the XClean framework of Lu, Wang, Li, and Liu
// ("XClean: Providing Valid Spelling Suggestions for XML Keyword
// Queries", ICDE 2011).
//
// Given an XML document and a possibly-misspelt keyword query, an
// Engine returns the top-k alternative queries ranked by the
// probability P(C|Q,T) that the user intended candidate C — the
// product of an exponential edit-error model and a query generation
// model: a Dirichlet-smoothed unigram language model evaluated over
// the document's entities (subtrees of the query's inferred result
// type, or per-query SLCA subtrees). Every suggestion is guaranteed to
// have at least one matching entity, i.e. a non-empty query result.
//
// Basic use:
//
//	f, _ := os.Open("corpus.xml")
//	eng, err := xclean.Open(f, xclean.Options{})
//	if err != nil { ... }
//	for _, s := range eng.Suggest("hinrich schutze geo-taging") {
//	    fmt.Println(s.Query, s.Score)
//	}
package xclean

import (
	"context"
	"fmt"
	"io"
	"os"

	"xclean/internal/core"
	"xclean/internal/invindex"
	"xclean/internal/obs"
	"xclean/internal/slca"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

// Semantics selects how the XML tree is decomposed into entities.
type Semantics int

const (
	// SemanticsResultType infers the most probable result node type
	// per candidate query and treats nodes of that type as entities
	// (the paper's primary semantics, from XReal).
	SemanticsResultType Semantics = iota
	// SemanticsSLCA uses each candidate's Smallest Lowest Common
	// Ancestor nodes as its entities (Section VI-B).
	SemanticsSLCA
	// SemanticsELCA uses each candidate's Exclusive Lowest Common
	// Ancestor nodes (the XRank semantics) as its entities — a superset
	// of the SLCA set that also keeps ancestors with independent
	// keyword evidence. An extension beyond the paper, demonstrating
	// the framework's claim of accommodating other query semantics.
	SemanticsELCA
)

// Prior selects the entity prior P(r_j|T) of Eq. (8). The paper uses
// a uniform prior and notes the generalization to non-uniform priors;
// these implement it.
type Prior int

const (
	// PriorUniform is the paper's default: every entity equally likely.
	PriorUniform Prior = iota
	// PriorLength weights entities by their virtual-document length.
	PriorLength
	// PriorCustom weights entities by Options.EntityWeights (e.g.
	// click counts from a query log); unlisted entities weigh 1.
	PriorCustom
)

// Options tunes an Engine. The zero value reproduces the paper's
// defaults: ε=1, β=5, μ=2000, r=0.8, d=2, γ=1000, k=10.
type Options struct {
	// MaxErrors is ε, the maximum edit errors per keyword (0 = 1).
	MaxErrors int
	// ErrorPenalty is β in P(q|w) ∝ exp(-β·ed). 0 means the default 5;
	// negative values mean a literal 0 (no penalty).
	ErrorPenalty float64
	// Smoothing is the Dirichlet μ of the language model (0 = 2000).
	Smoothing float64
	// DepthReduction is the r of the result-type utility (0 = 0.8).
	DepthReduction float64
	// MinDepth is the minimal entity depth d (0 = 2). Entities may not
	// be shallower; in particular the document root never qualifies,
	// which prevents suggesting keyword combinations that are
	// connected only through the root.
	MinDepth int
	// Accumulators is γ, the cap on in-memory candidate score
	// accumulators (0 = 1000; negative = unlimited).
	Accumulators int
	// TopK is the number of suggestions returned (0 = 10).
	TopK int
	// Semantics selects the entity decomposition.
	Semantics Semantics
	// MaxSpaceChanges is τ for SuggestWithSpaces (0 = 1).
	MaxSpaceChanges int
	// MinTokenLength is the shortest indexed token (0 = 3, the paper's
	// setting; shorter tokens and stop words are not indexed).
	MinTokenLength int
	// PhoneticMatching additionally admits Soundex-equivalent
	// vocabulary words as keyword variants (the cognitive-error
	// extension of Section VI-A).
	PhoneticMatching bool
	// CompactPostings stores posting lists block-compressed in memory
	// (delta-encoded Dewey codes). Suggestions are identical; the index
	// is several-fold smaller and queries stream-decode the lists.
	CompactPostings bool
	// Synonyms maps keywords to alternative terms (thesaurus /
	// ontology); in-vocabulary synonyms join the variant set.
	Synonyms map[string][]string
	// BigramCoherence multiplies every candidate's score by the
	// interpolated bigram probability of its keyword sequence — the
	// language-model extension beyond the paper's unigram Eq. (9). It
	// penalizes candidates that combine individually-frequent but
	// never-adjacent words.
	BigramCoherence bool
	// BigramLambda is the interpolation weight λ of the bigram model
	// (0 = 0.7).
	BigramLambda float64
	// EntityPrior selects P(r_j|T); the zero value is the paper's
	// uniform prior.
	EntityPrior Prior
	// EntityWeights maps entity root Dewey codes in dot form (such as
	// "1.17.2") to unnormalized prior weights, consulted under
	// PriorCustom. Malformed codes are ignored.
	EntityWeights map[string]float64
	// StoreText keeps a copy of the document text in the index so that
	// Preview can render the witness entity of each suggestion.
	StoreText bool
	// Workers bounds the parallelism of one suggestion call: the
	// anchor-subtree scan of Algorithm 1 is sharded across this many
	// goroutines (and SuggestWithSpaces runs up to this many shapes
	// concurrently). 0 uses GOMAXPROCS; 1 forces the exact sequential
	// execution. Results are identical either way, up to floating-point
	// summation order.
	Workers int
}

func (o Options) coreConfig() core.Config {
	var custom map[string]float64
	if len(o.EntityWeights) > 0 {
		custom = make(map[string]float64, len(o.EntityWeights))
		for code, w := range o.EntityWeights {
			d, err := xmltree.ParseDewey(code)
			if err != nil {
				continue
			}
			custom[d.Key()] = w
		}
	}
	return core.Config{
		Prior:           core.Prior(o.EntityPrior),
		CustomPrior:     custom,
		Bigram:          o.BigramCoherence,
		BigramLambda:    o.BigramLambda,
		Epsilon:         o.MaxErrors,
		Beta:            o.ErrorPenalty,
		Mu:              o.Smoothing,
		R:               o.DepthReduction,
		MinDepth:        o.MinDepth,
		Gamma:           o.Accumulators,
		K:               o.TopK,
		MaxSpaceChanges: o.MaxSpaceChanges,
		Phonetic:        o.PhoneticMatching,
		Synonyms:        o.Synonyms,
		Workers:         o.Workers,
		Tokenizer:       o.tokenizerOptions(),
	}
}

func (o Options) tokenizerOptions() tokenizer.Options {
	return tokenizer.Options{MinLength: o.MinTokenLength}
}

// Suggestion is one alternative query.
type Suggestion struct {
	// Query is the suggested query string.
	Query string
	// Words are its keywords.
	Words []string
	// Score is proportional to P(C|Q,T); comparable within one call.
	Score float64
	// ResultType is the inferred result node type as a label path such
	// as "/dblp/article" (empty under SLCA semantics).
	ResultType string
	// Entities is the number of entities matching every keyword; it is
	// always ≥ 1 — suggested queries are guaranteed non-empty results.
	Entities int
	// EditDistance is the total edit distance from the input query.
	EditDistance int
	// Witness is the Dewey code (dot form, e.g. "1.17") of the first
	// entity that matched every keyword — the concrete exhibit of the
	// non-empty-result guarantee. Pass the suggestion to Preview to
	// render its text (requires Options.StoreText).
	Witness string
}

// IndexStats summarizes the indexed document.
type IndexStats struct {
	Nodes         int
	MaxDepth      int
	Tokens        int64
	DistinctTerms int
	LabelPaths    int
}

// Engine answers suggestion queries over one indexed XML document.
type Engine struct {
	opts Options
	ix   *invindex.Index
	core *core.Engine
	slca *slca.Engine
}

// Open parses one XML document from r and builds a suggestion engine.
func Open(r io.Reader, opts Options) (*Engine, error) {
	tree, err := xmltree.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	return FromTree(tree, opts), nil
}

// OpenStreaming indexes one XML document directly from its byte
// stream without materializing the parsed tree, so peak memory is the
// index plus one root-to-leaf stack. Use it for documents much larger
// than RAM headroom (the paper's INEX collection is 5.8 GB); results
// are identical to Open.
func OpenStreaming(r io.Reader, opts Options) (*Engine, error) {
	var (
		ix  *invindex.Index
		err error
	)
	if opts.StoreText {
		ix, err = invindex.BuildStoredFromReader(r, opts.tokenizerOptions())
	} else {
		ix, err = invindex.BuildFromReader(r, opts.tokenizerOptions())
	}
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	if opts.CompactPostings {
		ix.Compact()
	}
	return FromIndex(ix, opts), nil
}

// OpenFile is Open over a file path.
func OpenFile(path string, opts Options) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	defer f.Close()
	return Open(f, opts)
}

// OpenCollection parses several XML documents and joins them under a
// virtual root, as the paper does for the INEX collection.
func OpenCollection(rootLabel string, opts Options, readers ...io.Reader) (*Engine, error) {
	tree, err := xmltree.ParseCollection(rootLabel, readers...)
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	return FromTree(tree, opts), nil
}

// FromTree builds an engine over an already-parsed tree. It is the
// entry point used by the synthetic-corpus generators.
func FromTree(tree *xmltree.Tree, opts Options) *Engine {
	var ix *invindex.Index
	if opts.StoreText {
		ix = invindex.BuildStored(tree, opts.tokenizerOptions())
	} else {
		ix = invindex.Build(tree, opts.tokenizerOptions())
	}
	if opts.CompactPostings {
		ix.Compact()
	}
	return FromIndex(ix, opts)
}

// OpenIndex loads an index previously written by SaveIndex and builds
// an engine over it — much faster than re-indexing the document. The
// stored tokenization settings override Options.MinTokenLength.
func OpenIndex(r io.Reader, opts Options) (*Engine, error) {
	ix, err := invindex.Load(r)
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	opts.MinTokenLength = ix.TokenizerOptions().MinLength
	return FromIndex(ix, opts), nil
}

// OpenIndexFile is OpenIndex over a file path.
func OpenIndexFile(path string, opts Options) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	defer f.Close()
	return OpenIndex(f, opts)
}

// SaveIndex writes the engine's index so that OpenIndex can restore it
// without reparsing the document.
func (e *Engine) SaveIndex(w io.Writer) error {
	if err := e.ix.Save(w); err != nil {
		return fmt.Errorf("xclean: %w", err)
	}
	return nil
}

// PartialSet is one shard's un-normalized answer for one query: the
// per-keyword variant hits, per-candidate partial entity sums, and
// local per-type normalizers that a cluster coordinator folds into the
// global top-k (see internal/cluster). It is the payload of the
// /shard/suggest wire format.
type PartialSet = core.PartialSet

// SuggestPartials runs the scan half of a suggestion call and returns
// the shard-local partials instead of ranked suggestions — the shard
// side of the cluster scatter-gather protocol. It requires the
// result-type semantics (the default).
func (e *Engine) SuggestPartials(query string) (PartialSet, error) {
	return e.SuggestPartialsContext(context.Background(), query)
}

// SuggestPartialsContext is SuggestPartials under a context: the scan
// polls ctx cooperatively and a cancelled or expired context makes the
// call return ctx.Err(), so a shard stops scanning as soon as the
// coordinator's forwarded deadline dies.
func (e *Engine) SuggestPartialsContext(ctx context.Context, query string) (PartialSet, error) {
	if e.core == nil {
		return PartialSet{}, fmt.Errorf("xclean: shard partials require the result-type semantics")
	}
	ps, _, err := e.core.SuggestPartialsContext(ctx, query)
	return ps, err
}

// SuggestPartialsExplainedContext is SuggestPartialsContext plus the
// stage spans of the scan (obs.Span per stage, per worker) — the shard
// half of distributed tracing. A traced coordinator request asks its
// shards for this variant so every shard's per-stage timing rides back
// in the response envelope and stitches into the cluster-wide trace.
func (e *Engine) SuggestPartialsExplainedContext(ctx context.Context, query string) (PartialSet, []obs.Span, error) {
	if e.core == nil {
		return PartialSet{}, nil, fmt.Errorf("xclean: shard partials require the result-type semantics")
	}
	ps, _, spans, err := e.core.SuggestPartialsExplainedContext(ctx, query)
	return ps, spans, err
}

// ShardEngine returns an engine over shard `shard` of `n`: the slice
// of the corpus holding the shard'th contiguous range of top-level
// entity roots, with collection-global statistics (vocabulary, type
// lists, bigrams) shared so that per-shard partial scores merge into
// exactly the standalone scores. The slice shares the receiver's
// index tables; neither engine may index further documents afterwards.
func (e *Engine) ShardEngine(shard, n int) (*Engine, error) {
	sl, err := e.ix.ShardEntities(shard, n)
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	return FromIndex(sl, e.opts), nil
}

// SaveShardIndex writes shard `shard` of `n` in the SaveIndex format,
// loadable with OpenIndex on a shard server.
func (e *Engine) SaveShardIndex(w io.Writer, shard, n int) error {
	sl, err := e.ix.ShardEntities(shard, n)
	if err != nil {
		return fmt.Errorf("xclean: %w", err)
	}
	if err := sl.Save(w); err != nil {
		return fmt.Errorf("xclean: %w", err)
	}
	return nil
}

// FromIndex builds an engine over a prebuilt index (shared across
// engines with different scoring options).
func FromIndex(ix *invindex.Index, opts Options) *Engine {
	e := &Engine{opts: opts, ix: ix}
	switch opts.Semantics {
	case SemanticsSLCA:
		e.slca = slca.NewEngine(ix, opts.coreConfig())
	case SemanticsELCA:
		e.slca = slca.NewELCAEngine(ix, opts.coreConfig())
	default:
		e.core = core.NewEngine(ix, opts.coreConfig())
	}
	return e
}

// Suggest returns the top-k alternative queries for query, best first.
// A nil result means no candidate query has any connected, non-empty
// result.
func (e *Engine) Suggest(query string) []Suggestion {
	if e.slca != nil {
		return e.convert(e.slca.Suggest(query))
	}
	return e.convert(e.core.Suggest(query))
}

// SuggestContext is Suggest under a context: the anchor-subtree scan
// polls ctx cooperatively (every few dozen subtrees per worker), so a
// cancelled or expired context stops an in-progress call promptly and
// returns ctx.Err() with no suggestions. Passing a context that can
// never be cancelled (context.Background()) costs nothing over
// Suggest.
func (e *Engine) SuggestContext(ctx context.Context, query string) ([]Suggestion, error) {
	if e.slca != nil {
		out, err := e.slca.SuggestContext(ctx, query)
		return e.convert(out), err
	}
	out, err := e.core.SuggestContext(ctx, query)
	return e.convert(out), err
}

// SuggestWithSpaces additionally explores insertions and deletions of
// spaces (e.g. "power point" → "powerpoint"), per Section VI-A. Only
// available under the result-type semantics.
func (e *Engine) SuggestWithSpaces(query string) []Suggestion {
	if e.slca != nil {
		return e.convert(e.slca.Suggest(query))
	}
	return e.convert(e.core.SuggestWithSpaces(query))
}

// SuggestWithSpacesContext is SuggestWithSpaces under a context (see
// SuggestContext). Under SLCA/ELCA semantics it falls back to the
// plain suggestion path, exactly as SuggestWithSpaces does.
func (e *Engine) SuggestWithSpacesContext(ctx context.Context, query string) ([]Suggestion, error) {
	if e.slca != nil {
		out, err := e.slca.SuggestContext(ctx, query)
		return e.convert(out), err
	}
	out, err := e.core.SuggestWithSpacesContext(ctx, query)
	return e.convert(out), err
}

// Observer is the metrics sink of an Engine: attach one with
// SetObserver and every suggestion call feeds its latency, per-stage
// timing, and work counters into it. See the obs package for the
// snapshot and Prometheus exposition APIs.
type Observer = obs.Sink

// NewObserver builds an empty metrics sink.
func NewObserver() *Observer { return obs.NewSink() }

// SetObserver attaches a metrics sink (nil detaches it — the default,
// which keeps the suggestion path free of instrumentation cost). Set
// it before serving queries; it must not race with in-flight calls.
func (e *Engine) SetObserver(s *Observer) {
	if e.slca != nil {
		e.slca.SetSink(s)
	} else {
		e.core.SetSink(s)
	}
}

// Explain is the per-query trace returned by the *Explained variants:
// wall-clock stage spans (with per-worker attribution under parallel
// scans), per-keyword variant counts, work counters, and the scored
// candidate table.
type Explain = core.Explain

// ExplainKeyword is one traced keyword and its variant-family size.
type ExplainKeyword = core.ExplainKeyword

// ExplainCandidate is one row of a trace's scored candidate table.
type ExplainCandidate = core.ExplainCandidate

// SuggestExplained is Suggest plus the full trace of the call. Results
// are identical to Suggest; the call is marginally slower because
// tracing forces stage timing on.
func (e *Engine) SuggestExplained(query string) ([]Suggestion, *Explain) {
	if e.slca != nil {
		out, ex := e.slca.SuggestExplained(query)
		return e.convert(out), ex
	}
	out, ex := e.core.SuggestExplained(query)
	return e.convert(out), ex
}

// SuggestExplainedContext is SuggestExplained under a context (see
// SuggestContext). A cancelled call returns no trace.
func (e *Engine) SuggestExplainedContext(ctx context.Context, query string) ([]Suggestion, *Explain, error) {
	if e.slca != nil {
		out, ex, err := e.slca.SuggestExplainedContext(ctx, query)
		return e.convert(out), ex, err
	}
	out, ex, err := e.core.SuggestExplainedContext(ctx, query)
	return e.convert(out), ex, err
}

// SuggestWithSpacesExplained is SuggestWithSpaces plus the trace.
// Under SLCA/ELCA semantics it falls back to SuggestExplained, exactly
// as SuggestWithSpaces falls back to Suggest.
func (e *Engine) SuggestWithSpacesExplained(query string) ([]Suggestion, *Explain) {
	if e.slca != nil {
		out, ex := e.slca.SuggestExplained(query)
		return e.convert(out), ex
	}
	out, ex := e.core.SuggestWithSpacesExplained(query)
	return e.convert(out), ex
}

// SuggestWithSpacesExplainedContext is SuggestWithSpacesExplained
// under a context (see SuggestContext).
func (e *Engine) SuggestWithSpacesExplainedContext(ctx context.Context, query string) ([]Suggestion, *Explain, error) {
	if e.slca != nil {
		out, ex, err := e.slca.SuggestExplainedContext(ctx, query)
		return e.convert(out), ex, err
	}
	out, ex, err := e.core.SuggestWithSpacesExplainedContext(ctx, query)
	return e.convert(out), ex, err
}

// AddDocument parses one XML document from r and grafts it under the
// indexed root, updating the index incrementally (equivalent to
// re-indexing the enlarged corpus, at cost proportional to the added
// document) and rebuilding the engine's derived structures, including
// the variant index over the possibly-enlarged vocabulary.
//
// AddDocument is not safe to call concurrently with Suggest; callers
// serving live traffic should quiesce queries around it. Engines with
// CompactPostings are immutable.
func (e *Engine) AddDocument(r io.Reader) error {
	tree, err := xmltree.Parse(r)
	if err != nil {
		return fmt.Errorf("xclean: %w", err)
	}
	if err := e.ix.AddDocument(tree); err != nil {
		return fmt.Errorf("xclean: %w", err)
	}
	// Extend the shared variant index with the document's tokens (known
	// words are ignored) rather than rebuilding it over the vocabulary.
	tokOpts := e.opts.tokenizerOptions()
	var words []string
	tree.Walk(func(n *xmltree.Node) bool {
		if n.Text != "" {
			words = append(words, tokOpts.Tokenize(n.Text)...)
		}
		return true
	})
	if e.slca != nil {
		e.slca = e.slca.Refresh(words)
	} else {
		e.core = e.core.Refresh(words)
	}
	return nil
}

// RemoveDocument detaches the document rooted at the given Dewey code
// (dot form, e.g. "1.17" — a direct child of the root, as reported by
// Suggestion.Witness truncated to depth 2 or by the document's position
// in the collection) and updates the index as if it had never been
// indexed. Requires Options.StoreText; see invindex.RemoveDocument for
// the full contract. Like AddDocument, it must not race with Suggest.
func (e *Engine) RemoveDocument(code string) error {
	d, err := xmltree.ParseDewey(code)
	if err != nil {
		return fmt.Errorf("xclean: %w", err)
	}
	if err := e.ix.RemoveDocument(d); err != nil {
		return fmt.Errorf("xclean: %w", err)
	}
	if e.slca != nil {
		e.slca = e.slca.Refresh(nil)
	} else {
		e.core = e.core.Refresh(nil)
	}
	return nil
}

// Preview renders up to maxLen runes of the suggestion's witness
// entity — a sample of the query result the suggestion guarantees. It
// returns "" when the engine was built without Options.StoreText or
// the suggestion carries no witness.
func (e *Engine) Preview(s Suggestion, maxLen int) string {
	if s.Witness == "" {
		return ""
	}
	d, err := xmltree.ParseDewey(s.Witness)
	if err != nil {
		return ""
	}
	return e.ix.SubtreeText(d, maxLen)
}

// Stats describes the indexed document.
func (e *Engine) Stats() IndexStats {
	return IndexStats{
		Nodes:         e.ix.NodeCount(),
		MaxDepth:      e.ix.MaxDepth(),
		Tokens:        e.ix.TotalTokens(),
		DistinctTerms: e.ix.Vocab.Size(),
		LabelPaths:    e.ix.Paths.Len(),
	}
}

func (e *Engine) convert(in []core.Suggestion) []Suggestion {
	if len(in) == 0 {
		return nil
	}
	out := make([]Suggestion, len(in))
	for i, s := range in {
		rt := ""
		if s.ResultType != xmltree.InvalidPath {
			rt = e.ix.Paths.String(s.ResultType)
		}
		out[i] = Suggestion{
			Query:        s.Query(),
			Words:        s.Words,
			Score:        s.Score,
			ResultType:   rt,
			Entities:     s.Entities,
			EditDistance: s.EditDistance,
			Witness:      s.Witness.String(),
		}
	}
	return out
}
