package xclean

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesBuildAndRun compiles every example and runs it to
// completion, guarding the documented entry points against rot. Run
// with -short to skip (the examples generate corpora and take a few
// seconds each).
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 7 {
		t.Fatalf("expected ≥7 examples, found %d", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(t.TempDir(), name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			cmd := exec.Command(bin)
			done := make(chan error, 1)
			var out []byte
			go func() {
				var err error
				out, err = cmd.CombinedOutput()
				done <- err
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("run: %v\n%s", err, out)
				}
				if len(out) == 0 {
					t.Error("example produced no output")
				}
			case <-time.After(3 * time.Minute):
				_ = cmd.Process.Kill()
				t.Fatal("example timed out")
			}
		})
	}
}
