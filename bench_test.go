// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section VII), one testing.B per experiment, plus the
// design-choice ablations of DESIGN.md §5. Quality metrics (MRR,
// Precision@N) are attached via b.ReportMetric; wall-clock columns are
// the benchmark timings themselves.
//
//	go test -bench=. -benchmem
//
// Human-readable versions of the same tables: cmd/xbench.
package xclean

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"xclean/internal/core"
	"xclean/internal/dataset"
	"xclean/internal/eval"
	"xclean/internal/fastss"
	"xclean/internal/invindex"
	"xclean/internal/queryset"
	"xclean/internal/tokenizer"
)

var (
	benchOnce sync.Once
	benchW    *eval.Workbench
)

// benchWorkbench builds the shared corpus/query environment once per
// process. Sizes are chosen so the full suite runs in minutes while
// keeping the paper's data-centric vs document-centric contrast.
func benchWorkbench(b *testing.B) *eval.Workbench {
	b.Helper()
	benchOnce.Do(func() {
		benchW = eval.NewWorkbench(eval.WorkbenchConfig{
			Seed:          42,
			DBLPArticles:  10000,
			WikiArticles:  1000,
			QueriesPerSet: 30,
		})
	})
	return benchW
}

// runSet drives one system over one query set inside the benchmark
// loop and reports its quality metrics.
func runSet(b *testing.B, s eval.Suggester, set string, w *eval.Workbench) {
	qs := w.Sets[set]
	if len(qs) == 0 {
		b.Skip("empty query set")
	}
	res := eval.Run(s, qs, 10, tokenizer.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Suggest(qs[i%len(qs)].Dirty)
	}
	b.StopTimer()
	b.ReportMetric(res.MRR, "MRR")
	b.ReportMetric(res.PrecisionAt[0], "P@1")
}

// BenchmarkTable1DatasetStats regenerates Table I: corpus generation
// plus index construction for both datasets.
func BenchmarkTable1DatasetStats(b *testing.B) {
	for _, kind := range []string{"DBLP", "INEX"} {
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var st IndexStats
				if kind == "DBLP" {
					c := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 1, Articles: 3000})
					st = FromTree(c.Tree, Options{}).Stats()
				} else {
					c := dataset.GenerateWiki(dataset.WikiConfig{Seed: 1, Articles: 300})
					st = FromTree(c.Tree, Options{}).Stats()
				}
				if i == 0 {
					b.ReportMetric(float64(st.Nodes), "nodes")
					b.ReportMetric(float64(st.MaxDepth), "maxdepth")
					b.ReportMetric(float64(st.DistinctTerms), "terms")
				}
			}
		})
	}
}

// BenchmarkTable2QuerySets regenerates Table II: sampling clean
// queries and building the RAND and RULE perturbed sets.
func BenchmarkTable2QuerySets(b *testing.B) {
	w := benchWorkbench(b)
	total := 0
	for _, set := range w.SortedSetNames() {
		total += len(w.Sets[set])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clean := w.DBLP.SampleQueries(int64(i), 20)
		p := queryset.NewPerturber(int64(i), w.DBLPIndex.Vocab)
		p.MakeRand(clean)
		p.MakeRule(clean)
	}
	b.StopTimer()
	b.ReportMetric(float64(total), "queries")
}

// BenchmarkFig1Bias regenerates the Figure 1 micro-scenario.
func BenchmarkFig1Bias(b *testing.B) {
	w := benchWorkbench(b)
	set := eval.SetDBLPRand
	xc := w.XClean(set, nil)
	py := w.PY08(set, nil)
	disagreements := 0
	for _, q := range w.Sets[set] {
		x := xc.Suggest(q.Dirty)
		p := py.Suggest(q.Dirty)
		if len(x) > 0 && len(p) > 0 && x[0].Query() != p[0].Query() {
			disagreements++
		}
	}
	q := w.Sets[set][0].Dirty
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xc.Suggest(q)
	}
	b.StopTimer()
	b.ReportMetric(float64(disagreements), "disagreements")
}

// BenchmarkFig3MRR regenerates Figure 3: MRR of all four systems on
// all six query sets.
func BenchmarkFig3MRR(b *testing.B) {
	w := benchWorkbench(b)
	systems := map[string]func(set string) eval.Suggester{
		"XClean": func(set string) eval.Suggester { return w.XClean(set, nil) },
		"PY08":   func(set string) eval.Suggester { return w.PY08(set, nil) },
		"SE1":    func(string) eval.Suggester { return w.SE1() },
		"SE2":    func(string) eval.Suggester { return w.SE2() },
	}
	for _, name := range []string{"XClean", "PY08", "SE1", "SE2"} {
		mk := systems[name]
		for _, set := range w.SortedSetNames() {
			b.Run(name+"/"+set, func(b *testing.B) {
				runSet(b, mk(set), set, w)
			})
		}
	}
}

// BenchmarkFig4PrecisionAtN regenerates Figure 4: Precision@N per set.
func BenchmarkFig4PrecisionAtN(b *testing.B) {
	w := benchWorkbench(b)
	for _, set := range w.SortedSetNames() {
		b.Run(set, func(b *testing.B) {
			qs := w.Sets[set]
			e := w.XClean(set, nil)
			res := eval.Run(e, qs, 10, tokenizer.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Suggest(qs[i%len(qs)].Dirty)
			}
			b.StopTimer()
			b.ReportMetric(res.PrecisionAt[0], "P@1")
			b.ReportMetric(res.PrecisionAt[4], "P@5")
			b.ReportMetric(res.PrecisionAt[9], "P@10")
		})
	}
}

// BenchmarkTable3Example regenerates Table III's example comparison on
// the first RULE query.
func BenchmarkTable3Example(b *testing.B) {
	w := benchWorkbench(b)
	set := eval.SetDBLPRule
	qs := w.Sets[set]
	if len(qs) == 0 {
		b.Skip("empty RULE set")
	}
	xc := w.XClean(set, nil)
	py := w.PY08(set, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xc.Suggest(qs[0].Dirty)
		py.Suggest(qs[0].Dirty)
	}
}

// BenchmarkTable4BetaSweep regenerates Table IV: MRR vs β.
func BenchmarkTable4BetaSweep(b *testing.B) {
	w := benchWorkbench(b)
	set := eval.SetDBLPRand
	for _, beta := range []float64{-1, 1, 2, 5, 8, 10} {
		label := beta
		if label < 0 {
			label = 0
		}
		b.Run(fmt.Sprintf("beta=%g", label), func(b *testing.B) {
			bv := beta
			runSet(b, w.XClean(set, func(c *core.Config) { c.Beta = bv }), set, w)
		})
	}
}

// BenchmarkTable5GammaSweep regenerates Table V: MRR vs γ for XClean
// and PY08.
func BenchmarkTable5GammaSweep(b *testing.B) {
	w := benchWorkbench(b)
	set := eval.SetINEXRule
	for _, system := range []string{"XClean", "PY08"} {
		for _, gamma := range []int{10, 100, 1000, 10000} {
			g := gamma
			b.Run(fmt.Sprintf("%s/gamma=%d", system, g), func(b *testing.B) {
				var s eval.Suggester
				if system == "XClean" {
					s = w.XClean(set, func(c *core.Config) { c.Gamma = g })
				} else {
					s = w.PY08(set, func(c *core.Config) { c.Gamma = g })
				}
				runSet(b, s, set, w)
			})
		}
	}
}

// BenchmarkTable6RunningTime regenerates Table VI: per-query latency of
// XClean vs PY08 on every set (the ns/op column is the table).
func BenchmarkTable6RunningTime(b *testing.B) {
	w := benchWorkbench(b)
	for _, system := range []string{"XClean", "PY08"} {
		for _, set := range w.SortedSetNames() {
			b.Run(system+"/"+set, func(b *testing.B) {
				var s eval.Suggester
				if system == "XClean" {
					s = w.XClean(set, nil)
				} else {
					s = w.PY08(set, nil)
				}
				qs := w.Sets[set]
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Suggest(qs[i%len(qs)].Dirty)
				}
			})
		}
	}
}

// BenchmarkBaselineHMM compares the related-work HMM model (Pu [7])
// against XClean on both corpora. Expected shape, per the paper's
// analysis: the HMM's sequential-travel assumption and aggressive
// state pruning cost quality on dirty sets, and its O(l·S²) Viterbi
// pass costs time, while XClean additionally guarantees non-empty
// results.
func BenchmarkBaselineHMM(b *testing.B) {
	w := benchWorkbench(b)
	for _, set := range []string{eval.SetDBLPRand, eval.SetINEXRand} {
		for _, system := range []string{"XClean", "HMM"} {
			sv := system
			b.Run(set+"/"+sv, func(b *testing.B) {
				var s eval.Suggester
				if sv == "XClean" {
					s = w.XClean(set, nil)
				} else {
					s = w.HMM(set, nil)
				}
				runSet(b, s, set, w)
			})
		}
	}
}

// BenchmarkAblationScoreMode compares Algorithm 1's matched-only
// scoring against the exact Eq. (8) sum.
func BenchmarkAblationScoreMode(b *testing.B) {
	w := benchWorkbench(b)
	set := eval.SetDBLPRand
	for _, mode := range []core.ScoreMode{core.ScoreModeMatchedOnly, core.ScoreModeExact} {
		name := "matched-only"
		if mode == core.ScoreModeExact {
			name = "exact"
		}
		m := mode
		b.Run(name, func(b *testing.B) {
			runSet(b, w.XClean(set, func(c *core.Config) { c.ScoreMode = m }), set, w)
		})
	}
}

// BenchmarkAblationSkipping compares galloping vs linear merged-list
// skipping.
func BenchmarkAblationSkipping(b *testing.B) {
	w := benchWorkbench(b)
	set := eval.SetDBLPRand
	for _, linear := range []bool{false, true} {
		name := "galloping"
		if linear {
			name = "linear"
		}
		lv := linear
		b.Run(name, func(b *testing.B) {
			runSet(b, w.XClean(set, func(c *core.Config) { c.LinearSkip = lv }), set, w)
		})
	}
}

// BenchmarkAblationEviction compares the probabilistic
// lowest-estimate victim rule against FIFO at a tight γ.
func BenchmarkAblationEviction(b *testing.B) {
	w := benchWorkbench(b)
	set := eval.SetINEXRule
	for _, pol := range []core.EvictionPolicy{core.EvictLowestEstimate, core.EvictFIFO} {
		name := "lowest-estimate"
		if pol == core.EvictFIFO {
			name = "fifo"
		}
		p := pol
		b.Run(name, func(b *testing.B) {
			runSet(b, w.XClean(set, func(c *core.Config) {
				c.Eviction = p
				c.Gamma = 50
			}), set, w)
		})
	}
}

// BenchmarkAblationPrior compares the entity priors of Eq. (8):
// uniform (the paper's), length-proportional, and a custom log-style
// prior. On perturbation-derived ground truth the priors should be
// near-equivalent in quality (the generalization hook costs nothing);
// length priors shift scores toward content-rich entities.
func BenchmarkAblationPrior(b *testing.B) {
	w := benchWorkbench(b)
	set := eval.SetDBLPRand
	for _, prior := range []core.Prior{core.PriorUniform, core.PriorLength} {
		name := "uniform"
		if prior == core.PriorLength {
			name = "length"
		}
		pv := prior
		b.Run(name, func(b *testing.B) {
			runSet(b, w.XClean(set, func(c *core.Config) { c.Prior = pv }), set, w)
		})
	}
}

// BenchmarkAblationBigram measures the bigram-coherence extension
// against the paper's pure unigram model. Expected shape: equal or
// slightly better quality (perturbed queries rarely hinge on word
// order) at negligible extra cost — the factor is one table lookup per
// adjacent keyword pair at finalize time.
func BenchmarkAblationBigram(b *testing.B) {
	w := benchWorkbench(b)
	set := eval.SetINEXRand
	for _, bigram := range []bool{false, true} {
		name := "unigram"
		if bigram {
			name = "bigram"
		}
		bv := bigram
		b.Run(name, func(b *testing.B) {
			runSet(b, w.XClean(set, func(c *core.Config) { c.Bigram = bv }), set, w)
		})
	}
}

// BenchmarkAblationDepthReduction sweeps r of Eq. (7), the result-type
// utility's depth discount. The paper fixes r=0.8 citing XReal;
// expected shape: r→1 stops discounting deep types (risking
// keyword-only leaf types as results), small r over-favours shallow
// types; quality is flat in a broad middle band.
func BenchmarkAblationDepthReduction(b *testing.B) {
	w := benchWorkbench(b)
	set := eval.SetINEXRand
	for _, r := range []float64{0.5, 0.8, 0.95} {
		rv := r
		b.Run(fmt.Sprintf("r=%g", rv), func(b *testing.B) {
			runSet(b, w.XClean(set, func(c *core.Config) { c.R = rv }), set, w)
		})
	}
}

// BenchmarkAblationMu sweeps the Dirichlet smoothing μ of Eq. (9). The
// paper adopts μ≈2000 from the language-modeling literature; expected
// shape: tiny μ sharpens length effects, huge μ washes out entity
// evidence toward the background; perturbation ground truth is
// tolerant across decades.
func BenchmarkAblationMu(b *testing.B) {
	w := benchWorkbench(b)
	set := eval.SetDBLPRand
	for _, mu := range []float64{10, 200, 2000, 20000} {
		mv := mu
		b.Run(fmt.Sprintf("mu=%g", mv), func(b *testing.B) {
			runSet(b, w.XClean(set, func(c *core.Config) { c.Mu = mv }), set, w)
		})
	}
}

// BenchmarkAblationEpsilon sweeps the variant threshold ε on the RULE
// set. Section VII-D's efficiency analysis hinges on this: human
// misspellings need ε≈3 to be recoverable at all, and each increment
// multiplies the variant space (visible in ns/op).
func BenchmarkAblationEpsilon(b *testing.B) {
	w := benchWorkbench(b)
	set := eval.SetDBLPRule
	for _, eps := range []int{1, 2, 3} {
		ev := eps
		b.Run(fmt.Sprintf("eps=%d", ev), func(b *testing.B) {
			cfg := core.Config{Epsilon: ev}
			s := core.NewEngine(w.IndexFor(set), cfg)
			runSet(b, s, set, w)
		})
	}
}

// BenchmarkAblationMinDepth sweeps the minimal depth threshold d.
func BenchmarkAblationMinDepth(b *testing.B) {
	w := benchWorkbench(b)
	set := eval.SetDBLPRand
	for _, d := range []int{1, 2, 3} {
		dv := d
		b.Run(fmt.Sprintf("d=%d", dv), func(b *testing.B) {
			runSet(b, w.XClean(set, func(c *core.Config) { c.MinDepth = dv }), set, w)
		})
	}
}

// BenchmarkAblationSemantics compares the result-type and SLCA entity
// semantics on both corpora (Section VI-B's claim: SLCA holds up on
// data-centric data, degrades on document-centric data).
func BenchmarkAblationSemantics(b *testing.B) {
	w := benchWorkbench(b)
	for _, set := range []string{eval.SetDBLPRand, eval.SetINEXRand} {
		for _, sem := range []string{"type", "slca", "elca"} {
			sv := sem
			b.Run(set+"/"+sv, func(b *testing.B) {
				var s eval.Suggester
				switch sv {
				case "type":
					s = w.XClean(set, nil)
				case "slca":
					s = w.SLCA(set, nil)
				default:
					s = w.ELCA(set, nil)
				}
				runSet(b, s, set, w)
			})
		}
	}
}

// BenchmarkAblationCompression compares query processing over raw and
// block-compressed posting lists, reporting the index footprints. The
// expected shape: identical quality (differentially tested in
// internal/core), several-fold smaller postings storage, modest decode
// overhead per query.
func BenchmarkAblationCompression(b *testing.B) {
	w := benchWorkbench(b)
	set := eval.SetDBLPRand
	for _, compact := range []bool{false, true} {
		name := "raw"
		if compact {
			name = "compressed"
		}
		cv := compact
		b.Run(name, func(b *testing.B) {
			var s *core.Engine
			if cv {
				s = w.XCleanCompact(set, nil)
			} else {
				s = w.XClean(set, nil)
			}
			var bytes int64
			if cv {
				bytes = w.CompactIndexFor(set).PostingsBytes()
			} else {
				bytes = w.DBLPIndex.PostingsBytes()
			}
			runSet(b, s, set, w)
			b.ReportMetric(float64(bytes), "postings-bytes")
		})
	}
}

// BenchmarkScalability sweeps the corpus size: index construction,
// per-query suggestion latency, and postings footprint at each scale.
// Expected shape: build time and footprint grow linearly with corpus
// size; query latency grows sublinearly (skipping touches only the
// subtrees containing variants).
func BenchmarkScalability(b *testing.B) {
	for _, articles := range []int{2000, 5000, 10000} {
		n := articles
		b.Run(fmt.Sprintf("build/articles=%d", n), func(b *testing.B) {
			c := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 5, Articles: n})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FromTree(c.Tree, Options{})
			}
		})
		b.Run(fmt.Sprintf("query/articles=%d", n), func(b *testing.B) {
			c := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 5, Articles: n})
			e := FromTree(c.Tree, Options{MaxErrors: 2})
			qs := c.SampleQueries(6, 20)
			p := queryset.NewPerturber(7, invindex.Build(c.Tree, tokenizer.Options{}).Vocab)
			dirty := make([]string, len(qs))
			for i, q := range qs {
				if d, ok := p.Rand(q); ok {
					dirty[i] = d
				} else {
					dirty[i] = q
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Suggest(dirty[i%len(dirty)])
			}
		})
	}
}

// BenchmarkStreamBuild compares streaming index construction against
// parse-then-build. Expected shape: equal CPU time and near-equal
// total allocations (the index dominates at bench scale). The
// streaming path's real benefit is peak retention — the parsed tree is
// never resident alongside the index — which matters when document
// size rivals RAM (the paper's 5.8 GB INEX), not in B/op totals here.
func BenchmarkStreamBuild(b *testing.B) {
	c := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 8, Articles: 3000})
	var sb strings.Builder
	if _, err := c.Tree.WriteXML(&sb); err != nil {
		b.Fatal(err)
	}
	doc := sb.String()
	b.Run("tree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e, err := Open(strings.NewReader(doc), Options{})
			if err != nil {
				b.Fatal(err)
			}
			_ = e
		}
	})
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e, err := OpenStreaming(strings.NewReader(doc), Options{})
			if err != nil {
				b.Fatal(err)
			}
			_ = e
		}
	})
}

// BenchmarkIncrementalAdd measures AddDocument against the full
// rebuild it replaces. Expected shape: per-document cost is constant
// while rebuild cost grows with the corpus.
func BenchmarkIncrementalAdd(b *testing.B) {
	c := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 9, Articles: 5000})
	doc := `<article><author>doe</author><title>incremental index maintenance</title></article>`
	b.Run("add-one", func(b *testing.B) {
		e := FromTree(c.Tree, Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.AddDocument(strings.NewReader(doc)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			FromTree(c.Tree, Options{})
		}
	})
}

// BenchmarkSuggest is the canonical hot-path benchmark: one engine at
// the paper's defaults (ε=2 so variant sets are non-trivial), a fixed
// dirty-query mix, no observability sink attached. It is the
// regression guard for the always-compiled instrumentation hooks — the
// budget is ≤2% over an engine with no hooks at all — and the target
// of `make bench-smoke`. It deliberately avoids the shared workbench so
// a smoke run builds only one small corpus.
func BenchmarkSuggest(b *testing.B) {
	c := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 42, Articles: 5000})
	e := FromTree(c.Tree, Options{MaxErrors: 2, Workers: 1})
	qs := c.SampleQueries(6, 20)
	p := queryset.NewPerturber(7, invindex.Build(c.Tree, tokenizer.Options{}).Vocab)
	dirty := make([]string, len(qs))
	for i, q := range qs {
		if d, ok := p.Rand(q); ok {
			dirty[i] = d
		} else {
			dirty[i] = q
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Suggest(dirty[i%len(dirty)])
	}
}

// BenchmarkSuggestFlattened is BenchmarkSuggest against an engine that
// took a live write and was then flushed to a single segment: queries
// serve through the segment store's flattened fast path, which must
// stay within the bench-gate tolerance of the monolithic numbers.
func BenchmarkSuggestFlattened(b *testing.B) {
	c := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 42, Articles: 5000})
	e := FromTree(c.Tree, Options{MaxErrors: 2, Workers: 1})
	err := e.AddDocument(strings.NewReader(
		`<article><author>doe</author><title>flattened segment benchmark</title></article>`))
	if err != nil {
		b.Fatal(err)
	}
	if err := e.FlushSegments(context.Background()); err != nil {
		b.Fatal(err)
	}
	qs := c.SampleQueries(6, 20)
	p := queryset.NewPerturber(7, invindex.Build(c.Tree, tokenizer.Options{}).Vocab)
	dirty := make([]string, len(qs))
	for i, q := range qs {
		if d, ok := p.Rand(q); ok {
			dirty[i] = d
		} else {
			dirty[i] = q
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Suggest(dirty[i%len(dirty)])
	}
}

// BenchmarkSuggestObserved is BenchmarkSuggest with a metrics sink
// attached — the delta against BenchmarkSuggest is the full cost of
// stage timing and sink publication (the no-sink path must stay within
// 2% of the pre-instrumentation baseline; see `make bench-smoke`).
func BenchmarkSuggestObserved(b *testing.B) {
	c := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 42, Articles: 5000})
	e := FromTree(c.Tree, Options{MaxErrors: 2, Workers: 1})
	e.SetObserver(NewObserver())
	qs := c.SampleQueries(6, 20)
	p := queryset.NewPerturber(7, invindex.Build(c.Tree, tokenizer.Options{}).Vocab)
	dirty := make([]string, len(qs))
	for i, q := range qs {
		if d, ok := p.Rand(q); ok {
			dirty[i] = d
		} else {
			dirty[i] = q
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Suggest(dirty[i%len(dirty)])
	}
}

// BenchmarkSuggestContext is BenchmarkSuggest through the
// context-taking entry point with a live (cancellable) context — the
// delta against BenchmarkSuggest is the full cost of the cooperative
// cancellation polls in the anchor-subtree loop (one channel select
// per CancelCheckEvery subtrees), which must stay within the same ≤2%
// budget as the instrumentation hooks. A context.Background() call
// skips the polls entirely (Done() is nil), so only cancellable
// callers pay even this much.
func BenchmarkSuggestContext(b *testing.B) {
	c := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: 42, Articles: 5000})
	e := FromTree(c.Tree, Options{MaxErrors: 2, Workers: 1})
	qs := c.SampleQueries(6, 20)
	p := queryset.NewPerturber(7, invindex.Build(c.Tree, tokenizer.Options{}).Vocab)
	dirty := make([]string, len(qs))
	for i, q := range qs {
		if d, ok := p.Rand(q); ok {
			dirty[i] = d
		} else {
			dirty[i] = q
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.SuggestContext(ctx, dirty[i%len(dirty)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelWorkers measures the sharded anchor-subtree scan of
// Algorithm 1 at increasing worker counts, on the longest dirty query
// of the DBLP RAND set (more keywords → more per-subtree enumeration
// work to spread across shards). Workers=1 is the exact sequential
// path; the differential tests in internal/core pin that every worker
// count returns the same suggestions.
func BenchmarkParallelWorkers(b *testing.B) {
	w := benchWorkbench(b)
	set := eval.SetDBLPRand
	qs := w.Sets[set]
	if len(qs) == 0 {
		b.Skip("empty query set")
	}
	query := qs[0].Dirty
	for _, q := range qs {
		if len(strings.Fields(q.Dirty)) > len(strings.Fields(query)) {
			query = q.Dirty
		}
	}
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > counts[len(counts)-1] {
		counts = append(counts, n)
	}
	for _, n := range counts {
		nw := n
		b.Run(fmt.Sprintf("workers=%d", nw), func(b *testing.B) {
			e := w.XClean(set, func(c *core.Config) { c.Workers = nw })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Suggest(query)
			}
		})
	}
}

// BenchmarkAblationVariantGen compares FastSS against brute-force
// variant generation over the DBLP vocabulary.
func BenchmarkAblationVariantGen(b *testing.B) {
	w := benchWorkbench(b)
	vocab := w.DBLPIndex.VocabList()
	query := "architecure"
	b.Run("fastss", func(b *testing.B) {
		ix := fastss.Build(vocab, fastss.Config{MaxErrors: 2, PartitionLen: 12})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.Search(query)
		}
	})
	b.Run("bruteforce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fastss.BruteForce(vocab, query, 2)
		}
	})
}

// BenchmarkAblationFastSSPartition compares plain vs partitioned
// FastSS index construction and search.
func BenchmarkAblationFastSSPartition(b *testing.B) {
	w := benchWorkbench(b)
	vocab := w.DBLPIndex.VocabList()
	for _, lp := range []int{0, 8, 12} {
		lpv := lp
		b.Run(fmt.Sprintf("lp=%d", lpv), func(b *testing.B) {
			ix := fastss.Build(vocab, fastss.Config{MaxErrors: 2, PartitionLen: lpv})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.Search("probabilistc")
			}
			b.StopTimer()
			b.ReportMetric(float64(ix.Buckets()), "buckets")
		})
	}
}
