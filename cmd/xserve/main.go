// Command xserve runs the XClean suggestion service over HTTP:
//
//	xserve -doc corpus.xml -addr :8080
//	xserve -index corpus.idx -addr :8080 -semantics slca
//
//	curl 'localhost:8080/suggest?q=hinrich+schutze+geo-taging'
//	curl 'localhost:8080/stats'
//
// The server shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xclean"
	"xclean/internal/qlog"
	"xclean/internal/server"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xserve: ")
	var (
		doc       = flag.String("doc", "", "XML document to index")
		index     = flag.String("index", "", "prebuilt index file (alternative to -doc)")
		addr      = flag.String("addr", ":8080", "listen address")
		k         = flag.Int("k", 10, "suggestions to return")
		eps       = flag.Int("eps", 2, "max edit errors per keyword")
		beta      = flag.Float64("beta", 5, "error penalty β")
		semantics = flag.String("semantics", "type", "entity semantics: type, slca, or elca")
		bigram    = flag.Bool("bigram", false, "enable the bigram coherence extension")
		compact   = flag.Bool("compact", false, "store posting lists block-compressed")
		store     = flag.Bool("store-text", false, "store document text for ?preview=1 responses")
		qlogPath  = flag.String("qlog", "", "query-log file: loaded at startup (entity priors), appended on shutdown")
		cacheSize = flag.Int("cache", 1024, "suggestion LRU cache entries (0 disables)")
		workers   = flag.Int("workers", 0, "goroutines per suggestion call (0 = GOMAXPROCS, 1 = sequential)")
		quiet     = flag.Bool("q", false, "disable request logging")
	)
	flag.Parse()
	if (*doc == "") == (*index == "") {
		log.Print("exactly one of -doc or -index is required")
		flag.Usage()
		os.Exit(2)
	}

	opts := xclean.Options{
		MaxErrors:       *eps,
		ErrorPenalty:    *beta,
		TopK:            *k,
		BigramCoherence: *bigram,
		CompactPostings: *compact,
		StoreText:       *store,
		Workers:         *workers,
	}

	var queryLog *qlog.Log
	if *qlogPath != "" {
		queryLog = qlog.New(tokenizer.Options{})
		if f, err := os.Open(*qlogPath); err == nil {
			if err := queryLog.Load(f); err != nil {
				log.Fatalf("load query log: %v", err)
			}
			f.Close()
			// Recorded clicks become the entity prior of Eq. (8).
			if priors := queryLog.EntityPriors(); len(priors) > 0 {
				opts.EntityPrior = xclean.PriorCustom
				opts.EntityWeights = make(map[string]float64, len(priors))
				for key, w := range priors {
					opts.EntityWeights[xmltree.DeweyFromKey(key).String()] = w
				}
				fmt.Fprintf(os.Stderr, "xserve: %d entity priors from %s\n", len(priors), *qlogPath)
			}
		}
	}
	switch *semantics {
	case "type":
	case "slca":
		opts.Semantics = xclean.SemanticsSLCA
	case "elca":
		opts.Semantics = xclean.SemanticsELCA
	default:
		log.Fatalf("unknown semantics %q (want type, slca, or elca)", *semantics)
	}

	start := time.Now()
	var (
		eng *xclean.Engine
		err error
	)
	if *doc != "" {
		eng, err = xclean.OpenFile(*doc, opts)
	} else {
		eng, err = xclean.OpenIndexFile(*index, opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Fprintf(os.Stderr, "xserve: ready in %v: %d nodes, %d terms, %d tokens\n",
		time.Since(start).Round(time.Millisecond), st.Nodes, st.DistinctTerms, st.Tokens)

	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "xserve: ", 0)
	}
	srv := server.New(eng, server.Config{
		Addr:      *addr,
		Logger:    logger,
		QueryLog:  queryLog,
		CacheSize: *cacheSize,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "xserve: listening on %s\n", *addr)
	if err := srv.ListenAndServe(ctx); err != nil {
		log.Fatal(err)
	}
	if queryLog != nil {
		f, err := os.Create(*qlogPath)
		if err != nil {
			log.Fatalf("save query log: %v", err)
		}
		if err := queryLog.Save(f); err != nil {
			log.Fatalf("save query log: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("save query log: %v", err)
		}
		fmt.Fprintf(os.Stderr, "xserve: query log saved to %s\n", *qlogPath)
	}
	fmt.Fprintln(os.Stderr, "xserve: shut down")
}
