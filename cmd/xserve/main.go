// Command xserve runs the XClean suggestion service over HTTP:
//
//	xserve -doc corpus.xml -addr :8080
//	xserve -index corpus.idx -addr :8080 -semantics slca
//	xserve -docs ./corpora -snapshot-dir ./snapshots -idle-ttl 30m -watch 10s
//	xserve -role coordinator -shards localhost:8081,localhost:8082 -addr :8080
//
//	curl 'localhost:8080/suggest?q=hinrich+schutze+geo-taging'
//	curl 'localhost:8080/suggest?q=...&corpus=dblp&debug=1'  # per-stage trace
//	curl 'localhost:8080/corpora'                            # corpus catalog status
//	curl 'localhost:8080/metricz?format=prometheus'          # scrape endpoint
//	curl 'localhost:8080/stats'
//
// Every deployment serves through a corpus catalog: -doc/-index
// register a single corpus named after the file, -docs registers one
// corpus per XML file (or subdirectory) found in a directory. The
// catalog hot-swaps rebuilt indexes atomically, persists snapshots for
// warm restarts (-snapshot-dir), evicts idle engines (-idle-ttl), and
// rebuilds corpora whose source files change (-watch). The /corpora
// endpoint adds, reloads, and removes corpora at runtime.
//
// With -role coordinator the node serves no local index: /suggest fans
// out over the -shards servers (each an ordinary xserve serving an
// entity-range shard index built with `xclean -save-index -shard i/n`)
// and merges their partial scores; see internal/cluster.
//
// Logging is structured (log/slog, logfmt to stderr); every request
// line carries the request ID echoed in the /suggest response. The
// server shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"xclean"
	"xclean/internal/catalog"
	"xclean/internal/cluster"
	"xclean/internal/obs"
	"xclean/internal/qlog"
	"xclean/internal/server"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

func main() {
	var (
		doc       = flag.String("doc", "", "XML document to index as a single corpus")
		index     = flag.String("index", "", "prebuilt index file (alternative to -doc)")
		docs      = flag.String("docs", "", "directory scanned for corpora: each *.xml file and each subdirectory becomes one corpus")
		snapDir   = flag.String("snapshot-dir", "", "persist built indexes here for warm restarts and idle eviction")
		snapFmt   = flag.String("snapshot-format", "seg", "snapshot format written to -snapshot-dir: seg (mmap-able columnar, warm-starts in milliseconds) or gob (legacy heap-decoded)")
		noMmap    = flag.Bool("no-mmap", false, "read seg snapshots into heap memory instead of serving off the mapping")
		idleTTL   = flag.Duration("idle-ttl", 0, "evict a corpus's engine after this idle time (needs -snapshot-dir; 0 disables)")
		watch     = flag.Duration("watch", 0, "rebuild corpora whose source files changed, checking at this interval (0 disables)")
		addr      = flag.String("addr", ":8080", "listen address")
		k         = flag.Int("k", 10, "suggestions to return")
		eps       = flag.Int("eps", 2, "max edit errors per keyword")
		beta      = flag.Float64("beta", 5, "error penalty β")
		semantics = flag.String("semantics", "type", "entity semantics: type, slca, or elca")
		bigram    = flag.Bool("bigram", false, "enable the bigram coherence extension")
		compact   = flag.Bool("compact", false, "store posting lists block-compressed")
		store     = flag.Bool("store-text", false, "store document text for ?preview=1 responses")
		qlogPath  = flag.String("qlog", "", "query-log file: loaded at startup (entity priors), appended on shutdown")
		cacheSize = flag.Int("cache", 1024, "suggestion LRU cache entries (0 disables)")
		workers   = flag.Int("workers", 0, "goroutines per suggestion call (0 = GOMAXPROCS, 1 = sequential)")
		quiet     = flag.Bool("q", false, "disable request logging")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (own mux, e.g. localhost:6060; empty disables)")
		slowPath  = flag.String("slowlog", "", "append the trace of slow /suggest requests to this JSONL file")
		slowThr   = flag.Duration("slow-threshold", qlog.DefaultSlowThreshold, "latency above which a request is logged as slow")
		role      = flag.String("role", "standalone", "standalone (serve a local index) or coordinator (fan /suggest out over -shards)")
		shards    = flag.String("shards", "", "coordinator mode: comma-separated shard servers in shard order; replicas of one shard join with | (\"h0a|h0b,h1a|h1b\")")
		shardReps = flag.String("shard-replicas", "", "coordinator mode: replica topology with shards separated by ; and replicas by , (\"h0a,h0b;h1a,h1b\"); alternative to -shards")
		shardTO   = flag.Duration("shard-timeout", 2*time.Second, "coordinator mode: per-request fan-out budget")
		hedge     = flag.Duration("hedge-after", 0, "coordinator mode: hedge a straggler shard's retry after this delay (0 = shard-timeout/4)")
		reqTO     = flag.Duration("request-timeout", 0, "per-request engine deadline; the scan is abandoned mid-flight when it expires (0 disables; coordinators use -shard-timeout)")
		maxInfl   = flag.Int("max-inflight", 0, "max concurrent engine scans before requests queue (0 = unlimited)")
		maxQueue  = flag.Int("max-queue", 0, "max requests waiting for a scan slot; beyond this, shed with 429 (needs -max-inflight)")
		trSample  = flag.Float64("trace-sample", 0, "head-sampling probability [0,1] for requests without a traceparent header (requests with a sampled traceparent always trace)")
		trBuffer  = flag.Int("trace-buffer", 0, "tail-sampled trace store capacity in traces; >0 enables tracing and /tracez (0 with -trace-sample 0 disables tracing)")
		trThr     = flag.Duration("trace-threshold", 0, "latency above which a trace is always retained by the tail sampler (0 = 250ms)")
		injDelay  = flag.Duration("inject-delay", 0, "fault injection: sleep this long inside every engine scan (testing only)")
		tailLim   = flag.Int("tail-limit", 0, "segmented index: buffered tail documents before a seal (0 = 64)")
		compactIv = flag.Duration("compact-interval", 0, "segmented index: background compaction check interval (0 = compact only after writes)")
	)
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}
	coordinator := false
	switch *role {
	case "standalone":
	case "coordinator":
		coordinator = true
	default:
		fatal("unknown role (want standalone or coordinator)", "role", *role)
	}
	sources := 0
	for _, s := range []string{*doc, *index, *docs} {
		if s != "" {
			sources++
		}
	}
	if coordinator {
		if sources != 0 {
			fatal("a coordinator serves no local corpus (drop -doc/-index/-docs)")
		}
		if *shards == "" && *shardReps == "" {
			fatal("coordinator role requires -shards or -shard-replicas")
		}
		if *shards != "" && *shardReps != "" {
			fatal("-shards and -shard-replicas are two spellings of the same topology; pass one")
		}
	} else if sources != 1 {
		fmt.Fprintln(os.Stderr, "xserve: exactly one of -doc, -index, or -docs is required")
		flag.Usage()
		os.Exit(2)
	}

	opts := xclean.Options{
		MaxErrors:       *eps,
		ErrorPenalty:    *beta,
		TopK:            *k,
		BigramCoherence: *bigram,
		CompactPostings: *compact,
		StoreText:       *store,
		Workers:         *workers,
		TailLimit:       *tailLim,
		CompactInterval: *compactIv,
		NoMmap:          *noMmap,
	}
	if *snapFmt != "seg" && *snapFmt != "gob" {
		fatal("unknown snapshot format (want seg or gob)", "snapshot-format", *snapFmt)
	}

	var queryLog *qlog.Log
	if *qlogPath != "" {
		queryLog = qlog.New(tokenizer.Options{})
		if f, err := os.Open(*qlogPath); err == nil {
			if err := queryLog.Load(f); err != nil {
				fatal("load query log", "path", *qlogPath, "err", err)
			}
			f.Close()
			// Recorded clicks become the entity prior of Eq. (8).
			if priors := queryLog.EntityPriors(); len(priors) > 0 {
				opts.EntityPrior = xclean.PriorCustom
				opts.EntityWeights = make(map[string]float64, len(priors))
				for key, w := range priors {
					opts.EntityWeights[xmltree.DeweyFromKey(key).String()] = w
				}
				logger.Info("entity priors loaded", "count", len(priors), "path", *qlogPath)
			}
		}
	}
	switch *semantics {
	case "type":
	case "slca":
		opts.Semantics = xclean.SemanticsSLCA
	case "elca":
		opts.Semantics = xclean.SemanticsELCA
	default:
		fatal("unknown semantics (want type, slca, or elca)", "semantics", *semantics)
	}

	var cat *catalog.Catalog
	var coord *cluster.Coordinator
	if coordinator {
		topoSpec := *shards
		if *shardReps != "" {
			topoSpec = *shardReps
		}
		var err error
		coord, err = cluster.New(cluster.Config{
			Shards:     cluster.ParseTopology(topoSpec),
			Beta:       *beta,
			K:          *k,
			Timeout:    *shardTO,
			HedgeAfter: *hedge,
			Logger:     logger,
		})
		if err != nil {
			fatal("configure cluster", "err", err)
		}
		topo := coord.Topology()
		names := make([]string, 0, len(topo))
		for _, reps := range topo {
			parts := make([]string, len(reps))
			for j, rep := range reps {
				parts[j] = rep.Name
			}
			names = append(names, strings.Join(parts, "|"))
		}
		logger.Info("coordinator ready", "shards", strings.Join(names, ","),
			"replicas", len(coord.Replicas()), "shardTimeout", *shardTO)
	} else {
		cat = catalog.New(catalog.Config{
			Options:        opts,
			SnapshotDir:    *snapDir,
			SnapshotFormat: *snapFmt,
			IdleTTL:        *idleTTL,
			Logger:         logger,
		})

		start := time.Now()
		switch {
		case *doc != "":
			if err := cat.Add(corpusName(*doc), *doc); err != nil {
				fatal("open corpus", "doc", *doc, "err", err)
			}
		case *index != "":
			if err := cat.AddSnapshot(corpusName(*index), *index); err != nil {
				fatal("open index", "index", *index, "err", err)
			}
		default:
			names, err := addDir(cat, *docs)
			if err != nil {
				fatal("scan corpus directory", "docs", *docs, "err", err)
			}
			if len(names) == 0 {
				fatal("no corpora found (want *.xml files or subdirectories)", "docs", *docs)
			}
		}
		logger.Info("catalog ready", "corpora", strings.Join(cat.Names(), ","),
			"took", time.Since(start).Round(time.Millisecond))
	}

	var slowLog *qlog.SlowLog
	if *slowPath != "" {
		f, err := os.OpenFile(*slowPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal("open slow-query log", "path", *slowPath, "err", err)
		}
		defer f.Close()
		slowLog = qlog.NewSlowLog(f, *slowThr)
		logger.Info("slow-query log enabled", "path", *slowPath, "threshold", slowLog.Threshold())
	}

	if *pprofAddr != "" {
		// pprof gets its own mux and listener so the profiling surface
		// never leaks onto the public handler.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				logger.Error("pprof server", "err", err)
			}
		}()
	}

	var traceStore *obs.TraceStore
	if *trBuffer > 0 || *trSample > 0 {
		traceStore = obs.NewTraceStore(obs.TraceStoreConfig{
			Size:      *trBuffer,
			Threshold: *trThr,
		})
		logger.Info("tracing enabled", "sample", *trSample,
			"buffer", *trBuffer, "threshold", traceStore.Threshold())
	}
	if *injDelay > 0 {
		logger.Warn("fault injection active: every scan sleeps", "delay", *injDelay)
	}

	var reqLogger *slog.Logger
	if !*quiet {
		reqLogger = logger
	}
	srv := server.New(nil, server.Config{
		Addr:           *addr,
		Logger:         reqLogger,
		QueryLog:       queryLog,
		CacheSize:      *cacheSize,
		SlowLog:        slowLog,
		Catalog:        cat,
		Cluster:        coord,
		RequestTimeout: *reqTO,
		MaxInflight:    *maxInfl,
		MaxQueue:       *maxQueue,
		Trace:          traceStore,
		TraceSample:    *trSample,
		InjectDelay:    *injDelay,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Maintenance loop: -watch drives source-change rebuilds (and idle
	// eviction); -idle-ttl alone still needs a ticker for eviction.
	// A coordinator has no catalog to maintain.
	switch {
	case cat == nil:
	case *watch > 0:
		go cat.Watch(ctx, *watch, true)
		logger.Info("watching sources", "interval", *watch)
	case *idleTTL > 0:
		interval := *idleTTL / 4
		if interval < time.Second {
			interval = time.Second
		}
		go cat.Watch(ctx, interval, false)
	}

	logger.Info("listening", "addr", *addr)
	if err := srv.ListenAndServe(ctx); err != nil {
		fatal("serve", "err", err)
	}
	if queryLog != nil {
		f, err := os.Create(*qlogPath)
		if err != nil {
			fatal("save query log", "err", err)
		}
		if err := queryLog.Save(f); err != nil {
			fatal("save query log", "err", err)
		}
		if err := f.Close(); err != nil {
			fatal("save query log", "err", err)
		}
		logger.Info("query log saved", "path", *qlogPath)
	}
	logger.Info("shut down")
}

// corpusName derives a corpus name from a file path: the base name
// without its extension ("./data/dblp.xml" → "dblp").
func corpusName(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// addDir registers one corpus per *.xml file and one per subdirectory
// of dir (a subdirectory's XML files are joined into one corpus).
func addDir(cat *catalog.Catalog, dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
	for _, e := range entries {
		var name string
		switch {
		case e.IsDir():
			name = e.Name()
		case strings.EqualFold(filepath.Ext(e.Name()), ".xml"):
			name = corpusName(e.Name())
		default:
			continue
		}
		if err := cat.Add(name, filepath.Join(dir, e.Name())); err != nil {
			return names, fmt.Errorf("corpus %s: %w", name, err)
		}
		names = append(names, name)
	}
	return names, nil
}
