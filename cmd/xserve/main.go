// Command xserve runs the XClean suggestion service over HTTP:
//
//	xserve -doc corpus.xml -addr :8080
//	xserve -index corpus.idx -addr :8080 -semantics slca
//
//	curl 'localhost:8080/suggest?q=hinrich+schutze+geo-taging'
//	curl 'localhost:8080/suggest?q=...&debug=1'          # per-stage trace
//	curl 'localhost:8080/metricz?format=prometheus'      # scrape endpoint
//	curl 'localhost:8080/stats'
//
// Logging is structured (log/slog, logfmt to stderr); every request
// line carries the request ID echoed in the /suggest response. The
// server shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xclean"
	"xclean/internal/qlog"
	"xclean/internal/server"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

func main() {
	var (
		doc       = flag.String("doc", "", "XML document to index")
		index     = flag.String("index", "", "prebuilt index file (alternative to -doc)")
		addr      = flag.String("addr", ":8080", "listen address")
		k         = flag.Int("k", 10, "suggestions to return")
		eps       = flag.Int("eps", 2, "max edit errors per keyword")
		beta      = flag.Float64("beta", 5, "error penalty β")
		semantics = flag.String("semantics", "type", "entity semantics: type, slca, or elca")
		bigram    = flag.Bool("bigram", false, "enable the bigram coherence extension")
		compact   = flag.Bool("compact", false, "store posting lists block-compressed")
		store     = flag.Bool("store-text", false, "store document text for ?preview=1 responses")
		qlogPath  = flag.String("qlog", "", "query-log file: loaded at startup (entity priors), appended on shutdown")
		cacheSize = flag.Int("cache", 1024, "suggestion LRU cache entries (0 disables)")
		workers   = flag.Int("workers", 0, "goroutines per suggestion call (0 = GOMAXPROCS, 1 = sequential)")
		quiet     = flag.Bool("q", false, "disable request logging")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (own mux, e.g. localhost:6060; empty disables)")
		slowPath  = flag.String("slowlog", "", "append the trace of slow /suggest requests to this JSONL file")
		slowThr   = flag.Duration("slow-threshold", qlog.DefaultSlowThreshold, "latency above which a request is logged as slow")
	)
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}
	if (*doc == "") == (*index == "") {
		fmt.Fprintln(os.Stderr, "xserve: exactly one of -doc or -index is required")
		flag.Usage()
		os.Exit(2)
	}

	opts := xclean.Options{
		MaxErrors:       *eps,
		ErrorPenalty:    *beta,
		TopK:            *k,
		BigramCoherence: *bigram,
		CompactPostings: *compact,
		StoreText:       *store,
		Workers:         *workers,
	}

	var queryLog *qlog.Log
	if *qlogPath != "" {
		queryLog = qlog.New(tokenizer.Options{})
		if f, err := os.Open(*qlogPath); err == nil {
			if err := queryLog.Load(f); err != nil {
				fatal("load query log", "path", *qlogPath, "err", err)
			}
			f.Close()
			// Recorded clicks become the entity prior of Eq. (8).
			if priors := queryLog.EntityPriors(); len(priors) > 0 {
				opts.EntityPrior = xclean.PriorCustom
				opts.EntityWeights = make(map[string]float64, len(priors))
				for key, w := range priors {
					opts.EntityWeights[xmltree.DeweyFromKey(key).String()] = w
				}
				logger.Info("entity priors loaded", "count", len(priors), "path", *qlogPath)
			}
		}
	}
	switch *semantics {
	case "type":
	case "slca":
		opts.Semantics = xclean.SemanticsSLCA
	case "elca":
		opts.Semantics = xclean.SemanticsELCA
	default:
		fatal("unknown semantics (want type, slca, or elca)", "semantics", *semantics)
	}

	start := time.Now()
	var (
		eng *xclean.Engine
		err error
	)
	if *doc != "" {
		eng, err = xclean.OpenFile(*doc, opts)
	} else {
		eng, err = xclean.OpenIndexFile(*index, opts)
	}
	if err != nil {
		fatal("open engine", "err", err)
	}
	st := eng.Stats()
	logger.Info("ready", "took", time.Since(start).Round(time.Millisecond),
		"nodes", st.Nodes, "terms", st.DistinctTerms, "tokens", st.Tokens)

	sink := xclean.NewObserver()
	eng.SetObserver(sink)

	var slowLog *qlog.SlowLog
	if *slowPath != "" {
		f, err := os.OpenFile(*slowPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal("open slow-query log", "path", *slowPath, "err", err)
		}
		defer f.Close()
		slowLog = qlog.NewSlowLog(f, *slowThr)
		logger.Info("slow-query log enabled", "path", *slowPath, "threshold", slowLog.Threshold())
	}

	if *pprofAddr != "" {
		// pprof gets its own mux and listener so the profiling surface
		// never leaks onto the public handler.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				logger.Error("pprof server", "err", err)
			}
		}()
	}

	var reqLogger *slog.Logger
	if !*quiet {
		reqLogger = logger
	}
	srv := server.New(eng, server.Config{
		Addr:      *addr,
		Logger:    reqLogger,
		QueryLog:  queryLog,
		CacheSize: *cacheSize,
		Obs:       sink,
		SlowLog:   slowLog,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Info("listening", "addr", *addr)
	if err := srv.ListenAndServe(ctx); err != nil {
		fatal("serve", "err", err)
	}
	if queryLog != nil {
		f, err := os.Create(*qlogPath)
		if err != nil {
			fatal("save query log", "err", err)
		}
		if err := queryLog.Save(f); err != nil {
			fatal("save query log", "err", err)
		}
		if err := f.Close(); err != nil {
			fatal("save query log", "err", err)
		}
		logger.Info("query log saved", "path", *qlogPath)
	}
	logger.Info("shut down")
}
