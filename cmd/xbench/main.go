// Command xbench regenerates every table and figure of the XClean
// paper's evaluation (Section VII) on the synthetic stand-in corpora:
//
//	xbench -exp all
//	xbench -exp fig3 -queries 100
//	xbench -exp table5 -dblp 30000
//
// Experiments: table1 table2 table3 table4 table5 table6 fig1 fig3
// fig4 ablations extensions all. See EXPERIMENTS.md for the expected
// shapes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"text/tabwriter"
	"time"

	"xclean/internal/core"
	"xclean/internal/eval"
	"xclean/internal/tokenizer"
)

// workers is the -workers flag: Config.Workers applied to every XClean
// engine the experiments build (0 = GOMAXPROCS, 1 = sequential).
var workers int

// PerfRecord is one experiment measurement in the -json output: what a
// perf-trajectory file needs to plot quality and latency over time.
type PerfRecord struct {
	Experiment string  `json:"experiment"`
	System     string  `json:"system"`
	Set        string  `json:"set,omitempty"`
	Queries    int     `json:"queries"`
	MRR        float64 `json:"mrr"`
	MeanNs     int64   `json:"meanNs"`
	MedianNs   int64   `json:"medianNs"`
	P95Ns      int64   `json:"p95Ns"`
	// ThroughputQPS is single-client throughput (1/mean latency).
	ThroughputQPS float64 `json:"throughputQps"`
}

// BenchJSON is the top-level -json document.
type BenchJSON struct {
	Timestamp  string       `json:"timestamp"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	Seed       int64        `json:"seed"`
	DBLP       int          `json:"dblpArticles"`
	Wiki       int          `json:"wikiArticles"`
	QuerySize  int          `json:"queriesPerSet"`
	Records    []PerfRecord `json:"records"`
}

// perfRecords accumulates the machine-readable side of every
// experiment that measures latency; written out by -json.
var perfRecords []PerfRecord

// record captures one eval result for the -json output (no-op cost
// when -json is unset: the slice just grows and is dropped).
func record(experiment, system, set string, res eval.Result) {
	qps := 0.0
	if res.AvgTime > 0 {
		qps = float64(time.Second) / float64(res.AvgTime)
	}
	perfRecords = append(perfRecords, PerfRecord{
		Experiment:    experiment,
		System:        system,
		Set:           set,
		Queries:       res.Latency.Count,
		MRR:           res.MRR,
		MeanNs:        res.Latency.Mean.Nanoseconds(),
		MedianNs:      res.Latency.P50.Nanoseconds(),
		P95Ns:         res.Latency.P95.Nanoseconds(),
		ThroughputQPS: qps,
	})
}

// xc builds an XClean engine for a set, applying the experiment's mod
// and then the global -workers flag.
func xc(w *eval.Workbench, set string, mod func(*core.Config)) *core.Engine {
	return w.XClean(set, func(c *core.Config) {
		if mod != nil {
			mod(c)
		}
		c.Workers = workers
	})
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|table2|table3|table4|table5|table6|fig1|fig3|fig4|ablations|extensions|workers|all")
		seed    = flag.Int64("seed", 42, "generation seed")
		dblp    = flag.Int("dblp", 20000, "articles in the DBLP-like corpus")
		wiki    = flag.Int("wiki", 2000, "articles in the INEX-like corpus")
		queries = flag.Int("queries", 50, "clean queries per set")
		nw      = flag.Int("workers", 0, "goroutines per suggestion call (0 = GOMAXPROCS, 1 = sequential)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the experiments to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
		jsonOut = flag.String("json", "", "write machine-readable per-experiment results (median/p95 latency, throughput) to this file")
	)
	flag.Parse()
	workers = *nw

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	fmt.Fprintf(os.Stderr, "building workbench (dblp=%d wiki=%d queries=%d seed=%d)...\n",
		*dblp, *wiki, *queries, *seed)
	start := time.Now()
	w := eval.NewWorkbench(eval.WorkbenchConfig{
		Seed:          *seed,
		DBLPArticles:  *dblp,
		WikiArticles:  *wiki,
		QueriesPerSet: *queries,
	})
	fmt.Fprintf(os.Stderr, "workbench ready in %v\n\n", time.Since(start).Round(time.Millisecond))

	runners := map[string]func(*eval.Workbench){
		"table1":     table1,
		"table2":     table2,
		"table3":     table3,
		"table4":     table4,
		"table5":     table5,
		"table6":     table6,
		"fig1":       fig1,
		"fig3":       fig3,
		"fig4":       fig4,
		"ablations":  ablations,
		"extensions": extensions,
		"workers":    workersSweep,
	}
	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = []string{"table1", "table2", "fig1", "table3", "fig3", "fig4", "table4", "table5", "table6", "ablations", "extensions", "workers"}
	}
	for _, name := range names {
		run, ok := runners[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		run(w)
		fmt.Println()
	}

	if *jsonOut != "" {
		doc := BenchJSON{
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Workers:    workers,
			Seed:       *seed,
			DBLP:       *dblp,
			Wiki:       *wiki,
			QuerySize:  *queries,
			Records:    perfRecords,
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "results written to %s (%d records)\n", *jsonOut, len(perfRecords))
	}
}

func header(title string) {
	fmt.Println("==", title, "==")
}

func tab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

// table1 prints Table I: dataset statistics.
func table1(w *eval.Workbench) {
	header("Table I: dataset statistics")
	tw := tab()
	fmt.Fprintln(tw, "Dataset\tsize (MB)\t#node\tmax depth\tavg depth\tvocab")
	dblpStats := w.DBLP.Tree.ComputeStats()
	wikiStats := w.Wiki.Tree.ComputeStats()
	fmt.Fprintf(tw, "INEX*\t%.1f\t%d\t%d\t%.2f\t%d\n",
		float64(w.Wiki.Tree.SerializedSize())/(1<<20), wikiStats.Nodes,
		wikiStats.MaxDepth, wikiStats.AvgDepth(), w.WikiIndex.Vocab.Size())
	fmt.Fprintf(tw, "DBLP*\t%.1f\t%d\t%d\t%.2f\t%d\n",
		float64(w.DBLP.Tree.SerializedSize())/(1<<20), dblpStats.Nodes,
		dblpStats.MaxDepth, dblpStats.AvgDepth(), w.DBLPIndex.Vocab.Size())
	tw.Flush()
	fmt.Println("(* synthetic stand-ins; see DESIGN.md §3)")
}

// table2 prints Table II: query sets and sample queries.
func table2(w *eval.Workbench) {
	header("Table II: query sets and sample queries")
	tw := tab()
	fmt.Fprintln(tw, "Query Set\t#queries\tSample")
	for _, name := range w.SortedSetNames() {
		qs := w.Sets[name]
		sample := ""
		if len(qs) > 0 {
			sample = qs[0].Dirty
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\n", name, len(qs), sample)
	}
	tw.Flush()
}

// fig1 demonstrates the PY08 scoring bias of Figure 1 on the
// generated corpus.
func fig1(w *eval.Workbench) {
	header("Figure 1: scoring bias (PY08 vs XClean)")
	set := eval.SetDBLPRand
	xc := xc(w, set, nil)
	py := w.PY08(set, nil)
	shown := 0
	for _, q := range w.Sets[set] {
		x := xc.Suggest(q.Dirty)
		p := py.Suggest(q.Dirty)
		if len(x) == 0 || len(p) == 0 {
			continue
		}
		if x[0].Query() != p[0].Query() {
			fmt.Printf("dirty query : %s\n", q.Dirty)
			fmt.Printf("truth       : %s\n", q.Truth)
			fmt.Printf("XClean top  : %s (entities=%d)\n", x[0].Query(), x[0].Entities)
			fmt.Printf("PY08 top    : %s\n\n", p[0].Query())
			shown++
			if shown >= 3 {
				break
			}
		}
	}
	if shown == 0 {
		fmt.Println("(no disagreement in this sample; rerun with more queries)")
	}
}

// table3 prints Table III: example suggestions of both systems for one
// RULE query.
func table3(w *eval.Workbench) {
	header("Table III: example suggestions (first RULE query)")
	set := eval.SetDBLPRule
	if len(w.Sets[set]) == 0 {
		fmt.Println("(empty RULE set)")
		return
	}
	q := w.Sets[set][0]
	fmt.Printf("query: %s   (truth: %s)\n", q.Dirty, q.Truth)
	tw := tab()
	fmt.Fprintln(tw, "rank\tXClean\tPY08")
	x := xc(w, set, nil).Suggest(q.Dirty)
	p := w.PY08(set, nil).Suggest(q.Dirty)
	for i := 0; i < 5; i++ {
		xs, ps := "-", "-"
		if i < len(x) {
			xs = x[i].Query()
		}
		if i < len(p) {
			ps = p[i].Query()
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\n", i+1, xs, ps)
	}
	tw.Flush()
}

// fig3 prints the MRR comparison of all systems on all six sets.
func fig3(w *eval.Workbench) {
	header("Figure 3: MRR of all systems")
	opts := tokenizer.Options{}
	se1, se2 := w.SE1(), w.SE2()
	tw := tab()
	fmt.Fprintln(tw, "Query Set\tXClean\tPY08\tSE1\tSE2")
	for _, set := range w.SortedSetNames() {
		qs := w.Sets[set]
		x := eval.Run(xc(w, set, nil), qs, 10, opts)
		p := eval.Run(w.PY08(set, nil), qs, 10, opts)
		s1 := eval.Run(se1, qs, 1, opts)
		s2 := eval.Run(se2, qs, 1, opts)
		record("fig3", "xclean", set, x)
		record("fig3", "py08", set, p)
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%.2f\n", set, x.MRR, p.MRR, s1.MRR, s2.MRR)
	}
	tw.Flush()
	fmt.Println("(SE columns are lower bounds: the stand-ins return one suggestion)")

	// The headline claim (XClean ≫ PY08) with paired-bootstrap 95%
	// intervals — a check the paper's point estimates omit.
	fmt.Println("\nXClean − PY08 MRR delta (paired bootstrap, 95% CI):")
	tw = tab()
	fmt.Fprintln(tw, "Query Set\tΔMRR\t95% CI\tsignificant")
	for _, set := range w.SortedSetNames() {
		c := eval.Compare(w.PY08(set, nil), xc(w, set, nil),
			w.Sets[set], 2000, 11, opts)
		fmt.Fprintf(tw, "%s\t%+.2f\t[%+.2f, %+.2f]\t%v\n",
			set, c.Delta, c.CILow, c.CIHigh, c.Significant())
	}
	tw.Flush()
}

// fig4 prints Precision@N curves per query set.
func fig4(w *eval.Workbench) {
	header("Figure 4: Precision@N")
	opts := tokenizer.Options{}
	for _, set := range w.SortedSetNames() {
		qs := w.Sets[set]
		x := eval.Run(xc(w, set, nil), qs, 10, opts)
		p := eval.Run(w.PY08(set, nil), qs, 10, opts)
		fmt.Printf("%s (n=%d)\n", set, len(qs))
		tw := tab()
		fmt.Fprint(tw, "N\t")
		for n := 1; n <= 10; n++ {
			fmt.Fprintf(tw, "%d\t", n)
		}
		fmt.Fprintln(tw)
		fmt.Fprint(tw, "XClean\t")
		for _, v := range x.PrecisionAt {
			fmt.Fprintf(tw, "%.2f\t", v)
		}
		fmt.Fprintln(tw)
		fmt.Fprint(tw, "PY08\t")
		for _, v := range p.PrecisionAt {
			fmt.Fprintf(tw, "%.2f\t", v)
		}
		fmt.Fprintln(tw)
		tw.Flush()
	}
}

// table4 prints the β sweep (MRR vs error penalty).
func table4(w *eval.Workbench) {
	header("Table IV: MRR vs beta (gamma=1000)")
	opts := tokenizer.Options{}
	betas := []float64{-1, 1, 2, 5, 8, 10} // -1 encodes literal β=0
	tw := tab()
	fmt.Fprint(tw, "Query Set\t")
	for _, b := range betas {
		if b < 0 {
			b = 0
		}
		fmt.Fprintf(tw, "β=%g\t", b)
	}
	fmt.Fprintln(tw)
	for _, set := range w.SortedSetNames() {
		fmt.Fprintf(tw, "%s\t", set)
		for _, b := range betas {
			beta := b
			e := xc(w, set, func(c *core.Config) { c.Beta = beta })
			res := eval.Run(e, w.Sets[set], 10, opts)
			fmt.Fprintf(tw, "%.2f\t", res.MRR)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// table5 prints the γ sweep (MRR vs accumulators) for XClean and PY08.
func table5(w *eval.Workbench) {
	header("Table V: MRR vs gamma (beta=5)")
	opts := tokenizer.Options{}
	gammas := []int{10, 100, 1000, 10000}
	for _, system := range []string{"XClean", "PY08"} {
		tw := tab()
		fmt.Fprintf(tw, "%s\t", system)
		for _, g := range gammas {
			fmt.Fprintf(tw, "γ=%d\t", g)
		}
		fmt.Fprintln(tw)
		for _, set := range w.SortedSetNames() {
			fmt.Fprintf(tw, "%s\t", set)
			for _, g := range gammas {
				gamma := g
				var s eval.Suggester
				if system == "XClean" {
					s = xc(w, set, func(c *core.Config) { c.Gamma = gamma })
				} else {
					s = w.PY08(set, func(c *core.Config) { c.Gamma = gamma })
				}
				res := eval.Run(s, w.Sets[set], 10, opts)
				fmt.Fprintf(tw, "%.2f\t", res.MRR)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
}

// table6 prints per-query running times: the paper's mean column plus
// the tail percentiles an online deployment cares about.
func table6(w *eval.Workbench) {
	header("Table VI: running time (gamma=1000)")
	opts := tokenizer.Options{}
	tw := tab()
	fmt.Fprintln(tw, "Query Set\tXClean mean\tXClean p95\tPY08 mean\tPY08 p95\tratio")
	for _, set := range w.SortedSetNames() {
		qs := w.Sets[set]
		x := eval.Run(xc(w, set, nil), qs, 10, opts)
		p := eval.Run(w.PY08(set, nil), qs, 10, opts)
		record("table6", "xclean", set, x)
		record("table6", "py08", set, p)
		ratio := float64(p.AvgTime) / float64(x.AvgTime)
		fmt.Fprintf(tw, "%s\t%v\t%v\t%v\t%v\t%.1fx\n", set,
			x.AvgTime.Round(time.Microsecond), x.Latency.P95.Round(time.Microsecond),
			p.AvgTime.Round(time.Microsecond), p.Latency.P95.Round(time.Microsecond), ratio)
	}
	tw.Flush()
}

// ablations prints the design-choice ablations of DESIGN.md §5.
func ablations(w *eval.Workbench) {
	header("Ablations")
	opts := tokenizer.Options{}
	set := eval.SetDBLPRand
	qs := w.Sets[set]

	rows := []struct {
		name string
		s    eval.Suggester
	}{
		{"default (matched-only, galloping, lowest-estimate)", xc(w, set, nil)},
		{"exact scoring", xc(w, set, func(c *core.Config) { c.ScoreMode = core.ScoreModeExact })},
		{"linear skip", xc(w, set, func(c *core.Config) { c.LinearSkip = true })},
		{"FIFO eviction, γ=50", xc(w, set, func(c *core.Config) { c.Eviction = core.EvictFIFO; c.Gamma = 50 })},
		{"lowest-estimate eviction, γ=50", xc(w, set, func(c *core.Config) { c.Gamma = 50 })},
		{"min depth d=1", xc(w, set, func(c *core.Config) { c.MinDepth = 1 })},
		{"min depth d=3", xc(w, set, func(c *core.Config) { c.MinDepth = 3 })},
		{"SLCA semantics", w.SLCA(set, nil)},
	}
	tw := tab()
	fmt.Fprintln(tw, "Variant\tMRR\tavg time")
	for _, r := range rows {
		res := eval.Run(r.s, qs, 10, opts)
		record("ablations", r.name, set, res)
		fmt.Fprintf(tw, "%s\t%.2f\t%v\n", r.name, res.MRR, res.AvgTime.Round(time.Microsecond))
	}
	tw.Flush()

	// Semantics comparison across both corpora (Sec. VI-B's claim:
	// SLCA works as well on data-centric, worse on document-centric;
	// ELCA is our superset extension).
	fmt.Println("\nSemantics comparison (MRR):")
	tw = tab()
	fmt.Fprintln(tw, "Query Set\tresult-type\tSLCA\tELCA")
	for _, s := range []string{eval.SetDBLPRand, eval.SetINEXRand} {
		rt := eval.Run(xc(w, s, nil), w.Sets[s], 10, opts)
		sl := eval.Run(w.SLCA(s, nil), w.Sets[s], 10, opts)
		el := eval.Run(w.ELCA(s, nil), w.Sets[s], 10, opts)
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\n", s, rt.MRR, sl.MRR, el.MRR)
	}
	tw.Flush()
}

// extensions prints the beyond-the-paper extension comparisons: the
// HMM related-work baseline, entity priors, the bigram coherence
// factor, and compressed posting storage.
func extensions(w *eval.Workbench) {
	header("Extensions (beyond the paper)")
	opts := tokenizer.Options{}

	fmt.Println("HMM baseline (Pu [7], related work):")
	tw := tab()
	fmt.Fprintln(tw, "Query Set\tXClean MRR\tHMM MRR\tXClean mean\tHMM mean")
	for _, set := range []string{eval.SetDBLPRand, eval.SetINEXRand} {
		qs := w.Sets[set]
		x := eval.Run(xc(w, set, nil), qs, 10, opts)
		h := eval.Run(w.HMM(set, nil), qs, 10, opts)
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%v\t%v\n", set, x.MRR, h.MRR,
			x.AvgTime.Round(time.Microsecond), h.AvgTime.Round(time.Microsecond))
	}
	tw.Flush()

	fmt.Println("\nEntity priors (Eq. (8) generalization) and bigram factor, DBLP-RAND:")
	set := eval.SetDBLPRand
	qs := w.Sets[set]
	rows := []struct {
		name string
		s    eval.Suggester
	}{
		{"uniform prior (paper)", xc(w, set, nil)},
		{"length prior", xc(w, set, func(c *core.Config) { c.Prior = core.PriorLength })},
		{"bigram coherence", xc(w, set, func(c *core.Config) { c.Bigram = true })},
	}
	tw = tab()
	fmt.Fprintln(tw, "Variant\tMRR\tmean time")
	for _, r := range rows {
		res := eval.Run(r.s, qs, 10, opts)
		fmt.Fprintf(tw, "%s\t%.2f\t%v\n", r.name, res.MRR, res.AvgTime.Round(time.Microsecond))
	}
	tw.Flush()

	fmt.Println("\nCompressed posting storage, DBLP-RAND:")
	raw := eval.Run(xc(w, set, nil), qs, 10, opts)
	comp := eval.Run(w.XCleanCompact(set, func(c *core.Config) { c.Workers = workers }), qs, 10, opts)
	tw = tab()
	fmt.Fprintln(tw, "Storage\tMRR\tmean time\tpostings bytes")
	fmt.Fprintf(tw, "raw\t%.2f\t%v\t%d\n", raw.MRR,
		raw.AvgTime.Round(time.Microsecond), w.DBLPIndex.PostingsBytes())
	fmt.Fprintf(tw, "compressed\t%.2f\t%v\t%d\n", comp.MRR,
		comp.AvgTime.Round(time.Microsecond), w.CompactIndexFor(set).PostingsBytes())
	tw.Flush()
}

// workersSweep measures the parallel anchor-subtree scan: per-query
// latency and MRR at increasing worker counts over DBLP-RAND. MRR must
// not move (the differential tests pin result equality); the time
// columns show what sharding Algorithm 1 buys on this machine.
func workersSweep(w *eval.Workbench) {
	header("Workers sweep: latency vs Config.Workers (DBLP-RAND)")
	opts := tokenizer.Options{}
	set := eval.SetDBLPRand
	qs := w.Sets[set]
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > counts[len(counts)-1] {
		counts = append(counts, n)
	}
	tw := tab()
	fmt.Fprintln(tw, "Workers\tMRR\tmean time\tp95\tspeedup")
	var base time.Duration
	for _, n := range counts {
		nw := n
		e := w.XClean(set, func(c *core.Config) { c.Workers = nw })
		res := eval.Run(e, qs, 10, opts)
		record("workers", fmt.Sprintf("xclean-w%d", nw), set, res)
		if nw == 1 {
			base = res.AvgTime
		}
		fmt.Fprintf(tw, "%d\t%.2f\t%v\t%v\t%.2fx\n", nw, res.MRR,
			res.AvgTime.Round(time.Microsecond), res.Latency.P95.Round(time.Microsecond),
			float64(base)/float64(res.AvgTime))
	}
	tw.Flush()
	fmt.Printf("(GOMAXPROCS=%d; single-keyword queries see little gain — the scan\n"+
		" is sharded per query, so wins come from multi-keyword candidates)\n",
		runtime.GOMAXPROCS(0))
}
