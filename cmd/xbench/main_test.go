package main

import (
	"testing"

	"xclean/internal/core"
	"xclean/internal/eval"
)

// TestXCHelper is a regression test for the xc helper, which once
// recursed into itself instead of delegating to Workbench.XClean and
// crashed every experiment at runtime. It must terminate, apply the
// experiment's mod, and layer the global -workers flag on top.
func TestXCHelper(t *testing.T) {
	w := eval.NewWorkbench(eval.WorkbenchConfig{
		Seed:          1,
		DBLPArticles:  100,
		WikiArticles:  20,
		QueriesPerSet: 2,
	})

	old := workers
	defer func() { workers = old }()
	workers = 3

	// xc mutates the same Config the mod sees, so capturing the
	// pointer exposes the final values the engine was built with.
	var captured *core.Config
	e := xc(w, eval.SetDBLPClean, func(c *core.Config) {
		c.Gamma = 7
		captured = c
	})
	if e == nil {
		t.Fatal("xc returned nil engine")
	}
	if captured.Gamma != 7 {
		t.Errorf("mod not applied: Gamma = %d, want 7", captured.Gamma)
	}
	if captured.Workers != 3 {
		t.Errorf("-workers flag not applied: Workers = %d, want 3", captured.Workers)
	}

	if e2 := xc(w, eval.SetDBLPClean, nil); e2 == nil {
		t.Fatal("xc with nil mod returned nil engine")
	}
}
