package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeReport(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseReport = `{"records":[
	{"experiment":"table6","system":"xclean","set":"DBLP-RAND","mrr":1.0,"meanNs":200000},
	{"experiment":"table6","system":"xclean","set":"DBLP-RULE","mrr":0.9,"meanNs":600000},
	{"experiment":"workers","system":"xclean","mrr":1.0,"meanNs":100000}
]}`

func mustLoad(t *testing.T, path string) map[key]record {
	t.Helper()
	m, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCompareWithinTolerance(t *testing.T) {
	base := mustLoad(t, writeReport(t, "base.json", baseReport))
	// +20% on one record, faster on another: inside a 25% gate.
	cand := mustLoad(t, writeReport(t, "new.json", `{"records":[
		{"experiment":"table6","system":"xclean","set":"DBLP-RAND","mrr":1.0,"meanNs":240000},
		{"experiment":"table6","system":"xclean","set":"DBLP-RULE","mrr":0.9,"meanNs":500000},
		{"experiment":"workers","system":"xclean","mrr":1.0,"meanNs":100000}
	]}`))
	results, onlyBase, onlyNew := compare(base, cand, 0.25, 0.05)
	if len(results) != 3 || len(onlyBase) != 0 || len(onlyNew) != 0 {
		t.Fatalf("matched %d, onlyBase %d, onlyNew %d", len(results), len(onlyBase), len(onlyNew))
	}
	for _, r := range results {
		if r.Regression {
			t.Errorf("%s flagged as regression: %+v", r.Key, r)
		}
	}
}

func TestCompareFlagsLatencyRegression(t *testing.T) {
	base := mustLoad(t, writeReport(t, "base.json", baseReport))
	cand := mustLoad(t, writeReport(t, "new.json", `{"records":[
		{"experiment":"table6","system":"xclean","set":"DBLP-RAND","mrr":1.0,"meanNs":300000},
		{"experiment":"table6","system":"xclean","set":"DBLP-RULE","mrr":0.9,"meanNs":600000},
		{"experiment":"workers","system":"xclean","mrr":1.0,"meanNs":100000}
	]}`))
	results, _, _ := compare(base, cand, 0.25, 0.05)
	bad := 0
	for _, r := range results {
		if r.Regression {
			bad++
			if r.Key.set != "DBLP-RAND" {
				t.Errorf("wrong record flagged: %s", r.Key)
			}
		}
	}
	if bad != 1 {
		t.Errorf("flagged %d regressions, want 1 (+50%% meanNs)", bad)
	}
}

func TestCompareFlagsMRRRegression(t *testing.T) {
	base := mustLoad(t, writeReport(t, "base.json", baseReport))
	// Faster, but ranking quality collapsed: still a regression.
	cand := mustLoad(t, writeReport(t, "new.json", `{"records":[
		{"experiment":"table6","system":"xclean","set":"DBLP-RAND","mrr":0.5,"meanNs":100000},
		{"experiment":"table6","system":"xclean","set":"DBLP-RULE","mrr":0.9,"meanNs":600000},
		{"experiment":"workers","system":"xclean","mrr":1.0,"meanNs":100000}
	]}`))
	results, _, _ := compare(base, cand, 0.25, 0.05)
	bad := 0
	for _, r := range results {
		if r.Regression {
			bad++
			if r.Key.set != "DBLP-RAND" {
				t.Errorf("wrong record flagged: %s", r.Key)
			}
		}
	}
	if bad != 1 {
		t.Errorf("flagged %d regressions, want 1 (MRR 1.0 → 0.5)", bad)
	}
}

func TestMergeBestTakesMinLatencyMaxMRR(t *testing.T) {
	base := mustLoad(t, writeReport(t, "base.json", baseReport))
	// Run 1 is contention-spiked (+50%); run 2 is clean. Merged, the
	// gate sees the clean numbers and passes.
	run1 := mustLoad(t, writeReport(t, "r1.json", `{"records":[
		{"experiment":"table6","system":"xclean","set":"DBLP-RAND","mrr":1.0,"meanNs":300000},
		{"experiment":"table6","system":"xclean","set":"DBLP-RULE","mrr":0.9,"meanNs":900000},
		{"experiment":"workers","system":"xclean","mrr":1.0,"meanNs":100000}
	]}`))
	run2 := mustLoad(t, writeReport(t, "r2.json", `{"records":[
		{"experiment":"table6","system":"xclean","set":"DBLP-RAND","mrr":1.0,"meanNs":210000},
		{"experiment":"table6","system":"xclean","set":"DBLP-RULE","mrr":0.9,"meanNs":580000},
		{"experiment":"workers","system":"xclean","mrr":1.0,"meanNs":150000}
	]}`))
	merged := mergeBest(run1, run2)
	if got := merged[key{"table6", "xclean", "DBLP-RAND"}].MeanNs; got != 210000 {
		t.Errorf("merged meanNs = %d, want the run-2 minimum 210000", got)
	}
	if got := merged[key{"workers", "xclean", ""}].MeanNs; got != 100000 {
		t.Errorf("merged meanNs = %d, want the run-1 minimum 100000", got)
	}
	results, _, _ := compare(base, merged, 0.25, 0.05)
	for _, r := range results {
		if r.Regression {
			t.Errorf("%s flagged as regression after merge: %+v", r.Key, r)
		}
	}
}

func TestCompareUnmatchedRecordsSkipped(t *testing.T) {
	base := mustLoad(t, writeReport(t, "base.json", baseReport))
	// One experiment gone, one new: neither fails the gate.
	cand := mustLoad(t, writeReport(t, "new.json", `{"records":[
		{"experiment":"table6","system":"xclean","set":"DBLP-RAND","mrr":1.0,"meanNs":200000},
		{"experiment":"table6","system":"xclean","set":"DBLP-RULE","mrr":0.9,"meanNs":600000},
		{"experiment":"table7","system":"xclean","set":"WIKI","mrr":1.0,"meanNs":900000}
	]}`))
	results, onlyBase, onlyNew := compare(base, cand, 0.25, 0.05)
	if len(results) != 2 {
		t.Errorf("matched %d records, want 2", len(results))
	}
	if len(onlyBase) != 1 || onlyBase[0].experiment != "workers" {
		t.Errorf("onlyBase = %v, want [workers/xclean]", onlyBase)
	}
	if len(onlyNew) != 1 || onlyNew[0].experiment != "table7" {
		t.Errorf("onlyNew = %v, want [table7/xclean/WIKI]", onlyNew)
	}
	for _, r := range results {
		if r.Regression {
			t.Errorf("%s flagged as regression", r.Key)
		}
	}
}
