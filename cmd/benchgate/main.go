// Command benchgate compares two xbench -json reports and fails when
// the candidate regresses past a tolerance. It is the CI perf gate:
//
//	benchgate -base BENCH_5.json -new /tmp/bench.json -tolerance 0.25
//
// Records are matched on (experiment, system, set) and compared on
// meanNs; MRR is additionally checked as an absolute floor (a speedup
// that costs ranking quality is a regression too). Records present in
// only one report are reported but do not fail the gate — experiments
// come and go between checkpoints.
//
// Extra positional arguments are additional candidate reports from
// repeated runs; the gate scores each record on its best (minimum)
// meanNs and best (maximum) MRR across candidates. Load noise on a
// shared machine is one-sided — contention only ever slows a run — so
// min-of-N recovers the machine's true speed without loosening the
// tolerance.
//
// Exit status: 0 when every matched record is within tolerance, 1 on
// any regression, 2 on usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// record mirrors the fields of xbench's PerfRecord that the gate
// consumes; the decoder ignores the rest.
type record struct {
	Experiment string  `json:"experiment"`
	System     string  `json:"system"`
	Set        string  `json:"set"`
	MRR        float64 `json:"mrr"`
	MeanNs     int64   `json:"meanNs"`
}

type report struct {
	Records []record `json:"records"`
}

type key struct{ experiment, system, set string }

func (k key) String() string {
	if k.set == "" {
		return k.experiment + "/" + k.system
	}
	return k.experiment + "/" + k.system + "/" + k.set
}

// compareResult is one matched record pair's verdict.
type compareResult struct {
	Key        key
	BaseNs     int64
	NewNs      int64
	Ratio      float64 // NewNs / BaseNs
	MRRDelta   float64 // new - base
	Regression bool
}

func load(path string) (map[key]record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[key]record, len(r.Records))
	for _, rec := range r.Records {
		m[key{rec.Experiment, rec.System, rec.Set}] = rec
	}
	return m, nil
}

// mergeBest folds a repeated run into the candidate set, keeping each
// record's best meanNs and MRR. Records new in b join the set.
func mergeBest(a, b map[key]record) map[key]record {
	for k, rb := range b {
		ra, ok := a[k]
		if !ok {
			a[k] = rb
			continue
		}
		if rb.MeanNs < ra.MeanNs {
			ra.MeanNs = rb.MeanNs
		}
		if rb.MRR > ra.MRR {
			ra.MRR = rb.MRR
		}
		a[k] = ra
	}
	return a
}

// compare gates every record present in both reports. A record
// regresses when its mean latency grew by more than tol (0.25 = 25%)
// or its MRR fell by more than mrrSlack absolute.
func compare(base, cand map[key]record, tol, mrrSlack float64) (results []compareResult, onlyBase, onlyNew []key) {
	for k, b := range base {
		n, ok := cand[k]
		if !ok {
			onlyBase = append(onlyBase, k)
			continue
		}
		r := compareResult{Key: k, BaseNs: b.MeanNs, NewNs: n.MeanNs, MRRDelta: n.MRR - b.MRR}
		if b.MeanNs > 0 {
			r.Ratio = float64(n.MeanNs) / float64(b.MeanNs)
		}
		r.Regression = r.Ratio > 1+tol || r.MRRDelta < -mrrSlack
		results = append(results, r)
	}
	for k := range cand {
		if _, ok := base[k]; !ok {
			onlyNew = append(onlyNew, k)
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Key.String() < results[j].Key.String() })
	sort.Slice(onlyBase, func(i, j int) bool { return onlyBase[i].String() < onlyBase[j].String() })
	sort.Slice(onlyNew, func(i, j int) bool { return onlyNew[i].String() < onlyNew[j].String() })
	return results, onlyBase, onlyNew
}

func main() {
	basePath := flag.String("base", "", "baseline xbench -json report")
	newPath := flag.String("new", "", "candidate xbench -json report")
	tol := flag.Float64("tolerance", 0.25, "allowed relative meanNs growth (0.25 = +25%)")
	mrrSlack := flag.Float64("mrr-slack", 0.05, "allowed absolute MRR drop")
	flag.Parse()
	if *basePath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchgate -base OLD.json -new NEW.json [-tolerance 0.25] [-mrr-slack 0.05]")
		os.Exit(2)
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cand, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	for _, extra := range flag.Args() {
		more, err := load(extra)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		cand = mergeBest(cand, more)
	}
	results, onlyBase, onlyNew := compare(base, cand, *tol, *mrrSlack)
	bad := 0
	for _, r := range results {
		status := "ok"
		if r.Regression {
			status = "REGRESSION"
			bad++
		}
		fmt.Printf("%-40s %10d → %10d ns  (%+.1f%%, mrr %+.3f)  %s\n",
			r.Key, r.BaseNs, r.NewNs, (r.Ratio-1)*100, r.MRRDelta, status)
	}
	for _, k := range onlyBase {
		fmt.Printf("%-40s only in baseline (skipped)\n", k)
	}
	for _, k := range onlyNew {
		fmt.Printf("%-40s only in candidate (skipped)\n", k)
	}
	if bad > 0 {
		fmt.Printf("benchgate: %d of %d records regressed past tolerance %+.0f%%\n", bad, len(results), *tol*100)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d records within tolerance %+.0f%%\n", len(results), *tol*100)
}
