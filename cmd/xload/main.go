// Command xload drives a running xserve instance with reproducible,
// optionally Zipf-skewed suggestion traffic and reports throughput and
// latency percentiles:
//
//	xgen  -out corpus.xml -kind dblp -articles 20000 -queries 200
//	xserve -doc corpus.xml -addr :8080 &
//	xload -url http://localhost:8080 -queryfile corpus.xml.queries.tsv -n 5000 -c 16 -zipf 1.2
//
// Query files are either plain text (one query per line) or the TSV
// that cmd/xgen writes (set<TAB>dirty<TAB>truth; the dirty column is
// used).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"xclean/internal/load"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xload: ")
	var (
		baseURL   = flag.String("url", "http://localhost:8080", "service base URL")
		queryFile = flag.String("queryfile", "", "query pool file (required)")
		n         = flag.Int("n", 1000, "total requests")
		c         = flag.Int("c", 8, "concurrent workers")
		zipf      = flag.Float64("zipf", 1.2, "query popularity skew (≤1 = uniform)")
		seed      = flag.Int64("seed", 42, "traffic seed")
		corpus    = flag.String("corpus", "", "target catalog corpus (required against a multi-corpus xserve)")
	)
	flag.Parse()
	if *queryFile == "" {
		flag.Usage()
		os.Exit(2)
	}

	queries, err := readQueries(*queryFile)
	if err != nil {
		log.Fatal(err)
	}
	if len(queries) == 0 {
		log.Fatalf("no queries in %s", *queryFile)
	}
	fmt.Fprintf(os.Stderr, "xload: %d queries, %d requests, %d workers, zipf=%.2f\n",
		len(queries), *n, *c, *zipf)

	res, err := load.Run(load.Config{
		BaseURL:  strings.TrimRight(*baseURL, "/"),
		Queries:  queries,
		Requests: *n,
		Workers:  *c,
		ZipfS:    *zipf,
		Seed:     *seed,
		Corpus:   *corpus,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
}

// readQueries loads one query per line; TSV lines contribute their
// second (dirty) column.
func readQueries(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if cols := strings.Split(line, "\t"); len(cols) >= 2 {
			out = append(out, cols[1])
		} else {
			out = append(out, line)
		}
	}
	return out, sc.Err()
}
