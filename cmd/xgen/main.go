// Command xgen generates the synthetic corpora and query sets used by
// the experiments, writing them to disk so they can be inspected or
// fed to cmd/xclean:
//
//	xgen -out corpus.xml -kind dblp -articles 20000 -queries 50
//	xgen -out wiki.xml   -kind wiki -articles 2000
//
// Alongside the XML it writes <out>.queries.tsv with one
// "set<TAB>dirty<TAB>truth" line per query.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"xclean/internal/dataset"
	"xclean/internal/invindex"
	"xclean/internal/queryset"
	"xclean/internal/tokenizer"
	"xclean/internal/xmltree"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xgen: ")
	var (
		out      = flag.String("out", "corpus.xml", "output XML path")
		kind     = flag.String("kind", "dblp", "corpus kind: dblp or wiki")
		articles = flag.Int("articles", 0, "number of articles (0 = kind default)")
		queries  = flag.Int("queries", 50, "clean queries to sample")
		seed     = flag.Int64("seed", 42, "generation seed")
	)
	flag.Parse()

	var tree *xmltree.Tree
	var clean []string
	switch *kind {
	case "dblp":
		c := dataset.GenerateDBLP(dataset.DBLPConfig{Seed: *seed, Articles: *articles})
		tree, clean = c.Tree, c.SampleQueries(*seed+1, *queries)
	case "wiki":
		c := dataset.GenerateWiki(dataset.WikiConfig{Seed: *seed, Articles: *articles})
		tree, clean = c.Tree, c.SampleQueries(*seed+1, *queries)
	default:
		log.Fatalf("unknown -kind %q (want dblp or wiki)", *kind)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	n, err := tree.WriteXML(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	st := tree.ComputeStats()
	fmt.Printf("wrote %s: %.1f MB, %d nodes, max depth %d, avg depth %.2f\n",
		*out, float64(n)/(1<<20), st.Nodes, st.MaxDepth, st.AvgDepth())

	ix := invindex.Build(tree, tokenizer.Options{})
	p := queryset.NewPerturber(*seed+2, ix.Vocab)
	qpath := *out + ".queries.tsv"
	qf, err := os.Create(qpath)
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriter(qf)
	count := 0
	emit := func(set string, qs []queryset.Query) {
		for _, q := range qs {
			fmt.Fprintf(w, "%s\t%s\t%s\n", set, q.Dirty, q.Truth)
			count++
		}
	}
	emit("CLEAN", queryset.MakeClean(clean))
	emit("RAND", p.MakeRand(clean))
	emit("RULE", p.MakeRule(clean))
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := qf.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d queries\n", qpath, count)
}
