// Command xclean indexes an XML document and suggests clean
// alternative queries, either one-shot or interactively:
//
//	xclean -doc corpus.xml "hinrich schutze geo-taging"
//	xclean -doc corpus.xml -semantics slca -k 5 "rose architecure fpga"
//	xclean -doc corpus.xml            # interactive REPL on stdin
//
// Indexing dominates startup on large documents; save the index once
// and reopen it per session. A ".seg" (or ".xcm") path saves the
// mmap-able snapshot format, which reopens in milliseconds regardless
// of corpus size; any other extension saves the legacy gob index.
// -index sniffs the format, so both reopen the same way:
//
//	xclean -doc corpus.xml -save-index corpus.seg
//	xclean -index corpus.seg "rose architecure fpga"
//
// For the scatter-gather cluster (see internal/cluster), -shard i/n
// saves the i'th of n entity-range shard slices instead:
//
//	xclean -doc corpus.xml -save-index shard0.idx -shard 0/2
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"xclean"
)

// saveAsSnapshot decides whether -save-index writes the mmap-able
// snapfile format: forced by -snapshot-format, or (under "auto")
// chosen by the path's extension.
func saveAsSnapshot(format, path string) bool {
	switch format {
	case "seg":
		return true
	case "gob":
		return false
	case "auto":
		ext := filepath.Ext(path)
		return ext == ".seg" || ext == ".xcm"
	default:
		log.Fatalf("unknown -snapshot-format %q (want auto, seg, or gob)", format)
		return false
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("xclean: ")
	var (
		doc       = flag.String("doc", "", "XML document to index")
		index     = flag.String("index", "", "prebuilt index file (alternative to -doc)")
		saveIndex = flag.String("save-index", "", "write the index to this file and exit")
		snapFmt   = flag.String("snapshot-format", "auto", "format for -save-index: auto (.seg/.xcm paths save the mmap-able snapshot, others gob), seg, or gob")
		noMmap    = flag.Bool("no-mmap", false, "read .seg snapshots into heap memory instead of serving off the mapping")
		shard     = flag.String("shard", "", "with -save-index: write entity-range shard i of n (format i/n) for a cluster shard server")
		k         = flag.Int("k", 10, "suggestions to return")
		eps       = flag.Int("eps", 2, "max edit errors per keyword")
		beta      = flag.Float64("beta", 5, "error penalty β")
		semantics = flag.String("semantics", "type", "entity semantics: type, slca, or elca")
		bigram    = flag.Bool("bigram", false, "enable the bigram coherence extension")
		compact   = flag.Bool("compact", false, "store posting lists block-compressed")
		stream    = flag.Bool("stream", false, "index the document as a stream (constant extra memory)")
		spaces    = flag.Bool("spaces", false, "also explore space insertions/deletions")
		verbose   = flag.Bool("v", false, "print result types and entity counts")
		explain   = flag.Bool("explain", false, "print the per-query trace: stage spans, variant counts, cache and eviction counters")
	)
	flag.Parse()
	if (*doc == "") == (*index == "") {
		log.Print("exactly one of -doc or -index is required")
		flag.Usage()
		os.Exit(2)
	}

	opts := xclean.Options{
		MaxErrors:       *eps,
		ErrorPenalty:    *beta,
		TopK:            *k,
		BigramCoherence: *bigram,
		CompactPostings: *compact,
		NoMmap:          *noMmap,
	}
	switch *semantics {
	case "type":
	case "slca":
		opts.Semantics = xclean.SemanticsSLCA
	case "elca":
		opts.Semantics = xclean.SemanticsELCA
	default:
		log.Fatalf("unknown semantics %q (want type, slca, or elca)", *semantics)
	}

	start := time.Now()
	var (
		eng *xclean.Engine
		err error
	)
	switch {
	case *doc != "" && *stream:
		var f *os.File
		if f, err = os.Open(*doc); err == nil {
			eng, err = xclean.OpenStreaming(f, opts)
			f.Close()
		}
	case *doc != "":
		eng, err = xclean.OpenFile(*doc, opts)
	default:
		eng, err = xclean.OpenIndexFile(*index, opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Fprintf(os.Stderr, "indexed in %v: %d nodes, %d terms, %d tokens\n",
		time.Since(start).Round(time.Millisecond), st.Nodes, st.DistinctTerms, st.Tokens)

	if *shard != "" && *saveIndex == "" {
		log.Fatal("-shard requires -save-index")
	}
	if *saveIndex != "" && saveAsSnapshot(*snapFmt, *saveIndex) {
		if *shard != "" {
			log.Fatal("-shard slices are gob-only; use -snapshot-format gob or a .idx path")
		}
		if ext := filepath.Ext(*saveIndex); ext != ".seg" && ext != ".xcm" {
			log.Fatalf("-snapshot-format seg needs a .seg or .xcm path, got %q", *saveIndex)
		}
		if err := eng.SaveSnapshot(*saveIndex); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "snapshot saved to %s\n", *saveIndex)
		return
	}
	if *saveIndex != "" {
		f, err := os.Create(*saveIndex)
		if err != nil {
			log.Fatal(err)
		}
		if *shard != "" {
			var i, n int
			if _, err := fmt.Sscanf(*shard, "%d/%d", &i, &n); err != nil {
				log.Fatalf("bad -shard %q (want i/n, e.g. 0/2)", *shard)
			}
			err = eng.SaveShardIndex(f, i, n)
		} else {
			err = eng.SaveIndex(f)
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		if *shard != "" {
			fmt.Fprintf(os.Stderr, "shard %s index saved to %s\n", *shard, *saveIndex)
		} else {
			fmt.Fprintf(os.Stderr, "index saved to %s\n", *saveIndex)
		}
		return
	}

	ask := func(q string) {
		t := time.Now()
		var sugs []xclean.Suggestion
		var ex *xclean.Explain
		switch {
		case *explain && *spaces:
			sugs, ex = eng.SuggestWithSpacesExplained(q)
		case *explain:
			sugs, ex = eng.SuggestExplained(q)
		case *spaces:
			sugs = eng.SuggestWithSpaces(q)
		default:
			sugs = eng.Suggest(q)
		}
		elapsed := time.Since(t)
		if len(sugs) == 0 {
			fmt.Printf("no valid suggestions for %q (%v)\n", q, elapsed.Round(time.Microsecond))
		}
		for i, s := range sugs {
			if *verbose || *explain {
				fmt.Printf("%2d. %-40s score=%.3g entities=%d type=%s\n",
					i+1, s.Query, s.Score, s.Entities, s.ResultType)
			} else {
				fmt.Printf("%2d. %s\n", i+1, s.Query)
			}
		}
		if ex != nil {
			printExplain(ex)
		}
		fmt.Fprintf(os.Stderr, "(%v)\n", elapsed.Round(time.Microsecond))
	}

	if flag.NArg() > 0 {
		ask(strings.Join(flag.Args(), " "))
		return
	}
	if *explain {
		fmt.Fprintln(os.Stderr, "(tracing on: each query prints its stage spans)")
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Fprint(os.Stderr, "query> ")
	for sc.Scan() {
		q := strings.TrimSpace(sc.Text())
		if q != "" {
			ask(q)
		}
		fmt.Fprint(os.Stderr, "query> ")
	}
}

// printExplain renders a per-query trace: the keyword variant table,
// the stage spans (call-level first, then per scan worker), and the
// work counters.
func printExplain(ex *xclean.Explain) {
	fmt.Printf("trace: %q took %v\n", ex.Query, time.Duration(ex.TookNs).Round(time.Microsecond))
	for _, kw := range ex.Keywords {
		fmt.Printf("  keyword %-20s %d variants\n", kw.Token, kw.Variants)
	}
	for _, sp := range ex.Spans {
		who := "call"
		if sp.Worker >= 0 {
			who = fmt.Sprintf("w%d", sp.Worker)
		}
		fmt.Printf("  span %-10s %-5s %v\n", sp.Stage, who,
			time.Duration(sp.DurationNs).Round(time.Microsecond))
	}
	st := ex.Stats
	fmt.Printf("  postings=%d subtrees=%d candidates=%d typeCacheHits=%d typeCacheMisses=%d evictions=%d workerSubtrees=%v\n",
		st.PostingsRead, st.Subtrees, st.CandidatesSeen,
		st.TypeCacheHits, st.TypeComputations, st.Evictions, st.WorkerSubtrees)
}
