package xclean

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// The differential harness of the segmented engine: drive a mixed
// add/remove workload through the segment stack and require the
// resulting suggestions to be score-identical (within floating-point
// association noise) to a monolithic engine cold-built over the same
// final corpus. Witness Dewey codes are excluded from the comparison —
// the segmented engine keeps original ordinals while a cold rebuild
// renumbers the surviving documents — but words, scores, result types,
// entity counts, and edit distances must all agree.

// segDocs is a corpus of small "articles" with heavily overlapping
// vocabulary, so that additions and removals shift the background
// model, the type lists, and the variant sets in measurable ways.
var segDocs = []string{
	`<article><author>jonathan rose</author><title>fpga architecture synthesis</title></article>`,
	`<article><author>mary smith</author><title>database indexing structures</title></article>`,
	`<article><author>alan jones</author><title>keyword search over databases</title></article>`,
	`<article><author>wei zhang</author><title>quantum query processing</title></article>`,
	`<article><author>mary smith</author><title>spelling correction for queries</title></article>`,
	`<article><author>lin chen</author><title>database query optimization</title></article>`,
	`<article><author>jonathan rose</author><title>reconfigurable fpga routing</title></article>`,
	`<article><author>sara lopez</author><title>keyword suggestion models</title></article>`,
	`<article><author>wei zhang</author><title>indexing quantum databases</title></article>`,
	`<article><author>alan jones</author><title>approximate string matching</title></article>`,
	`<article><author>lin chen</author><title>language models for search</title></article>`,
	`<article><author>sara lopez</author><title>spelling variants in queries</title></article>`,
	`<article><author>mary smith</author><title>fpga database acceleration</title></article>`,
	`<article><author>wei zhang</author><title>query suggestion ranking</title></article>`,
	`<article><author>jonathan rose</author><title>routing architecture models</title></article>`,
	`<article><author>lin chen</author><title>correction of keyword errors</title></article>`,
}

var segQueries = []string{
	"databse indexing",
	"keywrd search",
	"quantum procesing",
	"speling correction",
	"rose architecure fpga",
	"query sugestion",
	"langage models",
	"aproximate matching",
	"database",
	"zhang quantum indexing",
}

func collectionXML(docs []string) string {
	var b strings.Builder
	b.WriteString("<dblp>")
	for _, d := range docs {
		b.WriteString(d)
	}
	b.WriteString("</dblp>")
	return b.String()
}

// buildSegmented opens an engine over the first base docs, adds the
// rest through the live write path, then removes the documents at the
// given original ordinals (1-based root-child positions).
func buildSegmented(t *testing.T, opts Options, base int, removeOrds []int) *Engine {
	t.Helper()
	e, err := Open(strings.NewReader(collectionXML(segDocs[:base])), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range segDocs[base:] {
		if err := e.AddDocument(strings.NewReader(d)); err != nil {
			t.Fatal(err)
		}
	}
	for _, ord := range removeOrds {
		if err := e.RemoveDocument(fmt.Sprintf("1.%d", ord)); err != nil {
			t.Fatalf("remove 1.%d: %v", ord, err)
		}
	}
	return e
}

// buildReference cold-builds a monolithic engine over the surviving
// documents in their original order.
func buildReference(t *testing.T, opts Options, removeOrds []int) *Engine {
	t.Helper()
	dead := map[int]bool{}
	for _, o := range removeOrds {
		dead[o] = true
	}
	var live []string
	for i, d := range segDocs {
		if !dead[i+1] {
			live = append(live, d)
		}
	}
	e, err := Open(strings.NewReader(collectionXML(live)), opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func assertParity(t *testing.T, label, query string, got, want []Suggestion) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s %q: %d suggestions, reference has %d\n got: %v\nwant: %v",
			label, query, len(got), len(want), got, want)
	}
	const tol = 1e-12
	for i := range want {
		g, w := got[i], want[i]
		if g.Query != w.Query || g.ResultType != w.ResultType ||
			g.Entities != w.Entities || g.EditDistance != w.EditDistance {
			t.Fatalf("%s %q[%d]:\n got %+v\nwant %+v", label, query, i, g, w)
		}
		diff := math.Abs(g.Score - w.Score)
		scale := math.Max(math.Abs(w.Score), 1e-300)
		if diff/scale > tol {
			t.Fatalf("%s %q[%d] score %g vs %g (rel %g)", label, query, i, g.Score, w.Score, diff/scale)
		}
	}
}

func testSegmentedParity(t *testing.T, opts Options) {
	removeOrds := []int{2, 7, 11, 14} // one base doc, sealed adds, a late add
	ref := buildReference(t, opts, removeOrds)

	// A small tail limit forces several seal cycles during the adds.
	opts.TailLimit = 3
	seg := buildSegmented(t, opts, 5, removeOrds)
	defer seg.Close()

	if st := seg.SegmentStats(); st.Segments < 2 && st.TailDocs == 0 {
		t.Fatalf("workload did not exercise the multi-segment path: %+v", st)
	}

	for _, q := range segQueries {
		assertParity(t, "pre-compaction", q, seg.Suggest(q), ref.Suggest(q))
	}

	// Drain the compactor (tombstone purges + merges), then re-compare.
	for {
		did, err := seg.CompactNow(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !did {
			break
		}
	}
	for _, q := range segQueries {
		assertParity(t, "post-compaction", q, seg.Suggest(q), ref.Suggest(q))
	}

	// Flatten to a single segment: queries take the fast path and must
	// still agree.
	if err := seg.FlushSegments(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := seg.SegmentStats(); st.Segments != 1 || st.TailDocs != 0 || st.Tombstones != 0 {
		t.Fatalf("flush left a deep stack: %+v", st)
	}
	for _, q := range segQueries {
		assertParity(t, "post-flush", q, seg.Suggest(q), ref.Suggest(q))
	}

	// Index statistics agree with the cold rebuild.
	gs, ws := seg.Stats(), ref.Stats()
	if gs != ws {
		t.Errorf("stats diverge: %+v vs %+v", gs, ws)
	}
}

func TestSegmentedParity(t *testing.T) {
	testSegmentedParity(t, Options{StoreText: true, Workers: 1})
}

func TestSegmentedParityParallelScan(t *testing.T) {
	testSegmentedParity(t, Options{StoreText: true})
}

func TestSegmentedParityBigramLengthPrior(t *testing.T) {
	testSegmentedParity(t, Options{
		StoreText:       true,
		Workers:         1,
		BigramCoherence: true,
		EntityPrior:     PriorLength,
	})
}

func TestSegmentedParityCompactPostings(t *testing.T) {
	testSegmentedParity(t, Options{StoreText: true, Workers: 1, CompactPostings: true})
}

func TestSegmentedParitySpaces(t *testing.T) {
	opts := Options{StoreText: true, Workers: 1}
	removeOrds := []int{3, 9}
	ref := buildReference(t, opts, removeOrds)
	opts.TailLimit = 3
	seg := buildSegmented(t, opts, 5, removeOrds)
	defer seg.Close()
	queries := []string{"data base indexing", "keywordsearch", "fpga data base"}
	for _, q := range queries {
		assertParity(t, "spaces", q, seg.SuggestWithSpaces(q), ref.SuggestWithSpaces(q))
	}
}

// TestSegmentedStatsAfterWrites pins the pre-write and post-write
// routing: a monolithic engine must be untouched by the segmented
// machinery until the first write.
func TestSegmentedNoStoreBeforeWrite(t *testing.T) {
	e := openSample(t, Options{})
	if e.seg.Load() != nil {
		t.Fatal("segment store created without a write")
	}
	if st := e.SegmentStats(); st != (SegmentStats{}) {
		t.Fatalf("monolithic engine reports a stack: %+v", st)
	}
}

// TestSegmentedConcurrentReadWrite hammers a segmented engine with
// concurrent readers while a single writer streams adds and removals
// and a compactor runs — the contract AddDocument's godoc promises.
// Run with -race to check the synchronization, not just the results.
func TestSegmentedConcurrentReadWrite(t *testing.T) {
	opts := Options{StoreText: true, TailLimit: 3}
	e, err := Open(strings.NewReader(collectionXML(segDocs[:4])), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := segQueries[(i+r)%len(segQueries)]
				for _, s := range e.Suggest(q) {
					if s.Entities < 1 {
						t.Errorf("non-empty guarantee violated for %q: %+v", q, s)
						return
					}
				}
			}
		}(r)
	}

	// Single writer: three full add waves with interleaved removals and
	// explicit compaction steps.
	nextOrd := 5
	for wave := 0; wave < 3; wave++ {
		var added []int
		for _, d := range segDocs[4:] {
			if err := e.AddDocument(strings.NewReader(d)); err != nil {
				t.Error(err)
			}
			added = append(added, nextOrd)
			nextOrd++
		}
		for i := 0; i < len(added); i += 2 {
			if err := e.RemoveDocument(fmt.Sprintf("1.%d", added[i])); err != nil {
				t.Error(err)
			}
		}
		if _, err := e.CompactNow(context.Background()); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()

	if st := e.SegmentStats(); st.Compactions == 0 {
		t.Logf("note: no compaction completed during the run: %+v", st)
	}
	// The survivors are still all searchable.
	if got := e.Suggest("quantum procesing"); len(got) == 0 {
		t.Error("post-hammer query lost content")
	}
}
