package xclean

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"xclean/internal/core"
	"xclean/internal/invindex"
	"xclean/internal/snapfile"
)

// FromSource builds an engine over any index source — a heap index or
// an mmap'd snapshot reader. Heap indexes take the FromIndex path
// unchanged. The SLCA/ELCA semantics need the heap form (their
// per-query subtree walks mutate cursor state over raw lists), so a
// snapshot source is materialized up front under them; the default
// result-type semantics scans the source directly.
func FromSource(src invindex.Source, opts Options) (*Engine, error) {
	if ix, ok := src.(*invindex.Index); ok {
		return FromIndex(ix, opts), nil
	}
	opts.MinTokenLength = src.TokenizerOptions().MinLength
	if opts.Semantics == SemanticsSLCA || opts.Semantics == SemanticsELCA {
		e := &Engine{opts: opts, src: src}
		ix, err := e.heapIndex()
		if err != nil {
			return nil, err
		}
		return FromIndex(ix, opts), nil
	}
	e := &Engine{opts: opts, src: src}
	// Lazy variant-index construction keeps the open O(schema): the
	// deletion dictionary is derived from the vocabulary on first query.
	e.core = core.NewEngineLazy(src, opts.coreConfig())
	return e, nil
}

// heapIndex returns the heap form of the corpus, materializing a
// snapshot-backed source on first need (live writes, sharding,
// persistence in the gob format). The materialized index is cached; it
// copies every byte out of the mapping, so it stays valid even if the
// reader is later unmapped.
func (e *Engine) heapIndex() (*invindex.Index, error) {
	e.matMu.Lock()
	defer e.matMu.Unlock()
	if e.ix != nil {
		return e.ix, nil
	}
	type materializer interface {
		Materialize() (*invindex.Index, error)
	}
	m, ok := e.src.(materializer)
	if !ok {
		return nil, fmt.Errorf("xclean: source %T has no heap form", e.src)
	}
	ix, err := m.Materialize()
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	e.ix = ix
	return ix, nil
}

// SnapshotBacked reports whether the engine's read path serves off a
// snapshot reader (mmap or fallback) rather than a heap index. It
// turns false once a live write materializes the corpus.
func (e *Engine) SnapshotBacked() bool {
	if e.seg.Load() != nil {
		return false
	}
	_, ok := e.src.(*snapfile.Reader)
	return ok
}

// SaveSnapshot persists the corpus in the mmap-able snapfile format
// (DESIGN.md §16). The path's extension selects the shape:
//
//   - ".seg": one self-contained segment file. A segmented engine is
//     flattened first, exactly as SaveIndex does.
//   - ".xcm": a manifest plus one ".seg" per sealed segment of the
//     stack (named "<base>-0001.seg", …), written next to the
//     manifest. A monolithic engine yields a one-segment manifest. The
//     stack is sealed but not merged, so this is the cheap form under
//     live write traffic.
//
// Both forms are written atomically (temp file + rename) and are
// opened with OpenSnapshot or, via format sniffing, OpenIndexFile.
func (e *Engine) SaveSnapshot(path string) error {
	switch filepath.Ext(path) {
	case snapfile.SegExt:
		ix, err := e.currentIndex()
		if err != nil {
			return err
		}
		t := ix.ExportTables()
		if err := snapfile.WriteFile(path, &t); err != nil {
			return fmt.Errorf("xclean: %w", err)
		}
		return nil
	case snapfile.ManifestExt:
		var parts []*invindex.Index
		if st := e.seg.Load(); st != nil {
			var err error
			parts, err = st.SealedIndexes(context.Background())
			if err != nil {
				return fmt.Errorf("xclean: %w", err)
			}
		} else {
			ix, err := e.heapIndex()
			if err != nil {
				return err
			}
			parts = []*invindex.Index{ix}
		}
		base := strings.TrimSuffix(filepath.Base(path), snapfile.ManifestExt)
		dir := filepath.Dir(path)
		m := &snapfile.Manifest{Version: 1}
		for i, ix := range parts {
			name := fmt.Sprintf("%s-%04d%s", base, i+1, snapfile.SegExt)
			t := ix.ExportTables()
			if err := snapfile.WriteFile(filepath.Join(dir, name), &t); err != nil {
				return fmt.Errorf("xclean: %w", err)
			}
			m.Segments = append(m.Segments, name)
		}
		if err := snapfile.WriteManifest(path, m); err != nil {
			return fmt.Errorf("xclean: %w", err)
		}
		return nil
	default:
		return fmt.Errorf("xclean: snapshot path %q must end in %s or %s", path, snapfile.SegExt, snapfile.ManifestExt)
	}
}

// OpenSnapshot opens a snapshot written by SaveSnapshot and builds an
// engine over it. A single-segment snapshot (a ".seg" file, or a
// manifest listing one segment) is served directly off the mapped
// file: open cost is O(schema) — milliseconds, independent of corpus
// size — and resident memory is whatever the kernel pages in, so the
// corpus may exceed RAM. A multi-segment manifest is materialized and
// merged into a heap engine (the segment stack needs mutable
// structures; flatten before saving to keep the pure-mmap path).
//
// The stored tokenization settings override Options.MinTokenLength,
// as with OpenIndex.
func OpenSnapshot(path string, opts Options) (*Engine, error) {
	prefix, err := filePrefix(path, len(snapfile.ManifestMagic))
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	if !strings.HasPrefix(snapfile.ManifestMagic, string(prefix)) &&
		!strings.HasPrefix(string(prefix), snapfile.ManifestMagic) {
		// Not a manifest: must be a bare segment file.
		r, err := snapfile.Open(path, snapfile.OpenOptions{NoMmap: opts.NoMmap})
		if err != nil {
			return nil, fmt.Errorf("xclean: %w", err)
		}
		return FromSource(r, opts)
	}
	m, err := snapfile.ReadManifest(path)
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	dir := filepath.Dir(path)
	if len(m.Segments) == 1 {
		r, err := snapfile.Open(filepath.Join(dir, m.Segments[0]), snapfile.OpenOptions{NoMmap: opts.NoMmap})
		if err != nil {
			return nil, fmt.Errorf("xclean: %w", err)
		}
		return FromSource(r, opts)
	}
	parts := make([]*invindex.Index, len(m.Segments))
	for i, name := range m.Segments {
		r, err := snapfile.Open(filepath.Join(dir, name), snapfile.OpenOptions{NoMmap: opts.NoMmap})
		if err != nil {
			return nil, fmt.Errorf("xclean: %w", err)
		}
		ix, merr := r.Materialize()
		r.Close()
		if merr != nil {
			return nil, fmt.Errorf("xclean: %w", merr)
		}
		parts[i] = ix
	}
	merged, err := invindex.MergeOrdered(parts)
	if err != nil {
		return nil, fmt.Errorf("xclean: %w", err)
	}
	if opts.CompactPostings {
		merged.Compact()
	}
	opts.MinTokenLength = merged.TokenizerOptions().MinLength
	return FromIndex(merged, opts), nil
}

// VerifySnapshot runs the reader's full checksum pass when the engine
// is snapshot-backed (a no-op otherwise). The catalog calls it in the
// background after a warm start so silent corruption surfaces as a
// failed corpus rather than as wrong scores.
func (e *Engine) VerifySnapshot() error {
	if r, ok := e.src.(*snapfile.Reader); ok {
		return r.Verify()
	}
	return nil
}

// filePrefix reads up to n leading bytes of the file (fewer if the
// file is shorter).
func filePrefix(path string, n int) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, n)
	read, err := io.ReadFull(f, buf)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return nil, err
	}
	return buf[:read], nil
}
